// Statistical and determinism properties of the MIMO channel model —
// the properties the campaign engine's reproducibility contract rests on:
// tap powers follow the configured exponential decay, the injected AWGN
// matches the configured SNR, and the forked RNG streams make every
// realization a pure function of the seed.
#include "dsp/channel.hpp"

#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

namespace adres::dsp {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Recovers the per-pair tap vector from gainAt() by inverse DFT: gainAt
/// evaluates H(k) = sum_t h_t e^{-2pi i k t / Nfft} at every subcarrier,
/// so the taps come back exactly (up to double rounding).
std::vector<std::complex<double>> tapsOf(const MimoChannel& ch, int rx,
                                         int tx, int numTaps) {
  std::vector<std::complex<double>> h(static_cast<std::size_t>(kNfft));
  for (int k = 0; k < kNfft; ++k)
    h[static_cast<std::size_t>(k)] =
        ch.gainAt(k)[static_cast<std::size_t>(rx)][static_cast<std::size_t>(tx)];
  std::vector<std::complex<double>> taps(static_cast<std::size_t>(numTaps));
  for (int t = 0; t < numTaps; ++t) {
    std::complex<double> acc{0.0, 0.0};
    for (int k = 0; k < kNfft; ++k) {
      const double ang = 2.0 * kPi * k * t / kNfft;
      acc += h[static_cast<std::size_t>(k)] *
             std::complex<double>{std::cos(ang), std::sin(ang)};
    }
    taps[static_cast<std::size_t>(t)] = acc / static_cast<double>(kNfft);
  }
  return taps;
}

TEST(ChannelStats, TapPowerFollowsDelaySpreadDecay) {
  ChannelConfig cfg;
  cfg.taps = 4;
  cfg.delaySpread = 0.45;
  const int kSeeds = 200;
  std::vector<double> power(4, 0.0);
  double total = 0.0;
  int pairs = 0;
  for (int s = 1; s <= kSeeds; ++s) {
    cfg.seed = static_cast<u64>(s);
    MimoChannel ch(cfg);
    for (int rx = 0; rx < kNumRx; ++rx) {
      for (int tx = 0; tx < kNumTx; ++tx) {
        const auto taps = tapsOf(ch, rx, tx, cfg.taps);
        for (int t = 0; t < cfg.taps; ++t)
          power[static_cast<std::size_t>(t)] += std::norm(taps[static_cast<std::size_t>(t)]);
        ++pairs;
      }
    }
  }
  for (double& p : power) {
    p /= pairs;
    total += p;
  }
  // The pair is normalized to unit average energy, so the realized total
  // power has mean exactly 1 per pair and the tap profile is the
  // normalized exponential delaySpread^t.
  EXPECT_NEAR(total, 1.0, 0.05);
  double expTotal = 0.0;
  for (int t = 0; t < cfg.taps; ++t) expTotal += std::pow(cfg.delaySpread, t);
  for (int t = 0; t < cfg.taps; ++t) {
    const double expected = std::pow(cfg.delaySpread, t) / expTotal;
    EXPECT_NEAR(power[static_cast<std::size_t>(t)], expected, 0.15 * expected + 0.01)
        << "tap " << t;
  }
  // Successive tap power ratios track delaySpread directly.
  for (int t = 1; t < cfg.taps; ++t)
    EXPECT_NEAR(power[static_cast<std::size_t>(t)] / power[static_cast<std::size_t>(t - 1)],
                cfg.delaySpread, 0.12)
        << "decay ratio at tap " << t;
}

TEST(ChannelStats, AwgnVarianceMatchesSnr) {
  // Flat identity channel, zero CFO: rx = tx + noise, so the residual is
  // exactly the quantized noise realization.
  ChannelConfig cfg;
  cfg.flat = true;
  cfg.cfoPpm = 0.0;
  cfg.snrDb = 20.0;
  cfg.seed = 9;
  const std::size_t n = 4096;
  const i16 amp = 8192;
  std::array<std::vector<cint16>, kNumTx> tx;
  for (auto& w : tx) w.assign(n, cint16{amp, 0});
  MimoChannel ch(cfg);
  const auto rx = ch.run(tx);

  const double sigPower = (double(amp) * amp) / (32768.0 * 32768.0);
  const double wantVar =
      sigPower / std::pow(10.0, cfg.snrDb / 10.0) / 2.0;  // per component
  double sum = 0.0, sum2 = 0.0;
  std::size_t cnt = 0;
  for (int r = 0; r < kNumRx; ++r) {
    for (const cint16& s : rx[static_cast<std::size_t>(r)]) {
      const double dre = (s.re - amp) / 32768.0;
      const double dim = s.im / 32768.0;
      sum += dre + dim;
      sum2 += dre * dre + dim * dim;
      cnt += 2;
    }
  }
  const double mean = sum / static_cast<double>(cnt);
  const double var = sum2 / static_cast<double>(cnt) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 3.0 * std::sqrt(wantVar / static_cast<double>(cnt)));
  EXPECT_NEAR(var, wantVar, 0.06 * wantVar);
}

TEST(ChannelStats, RealizationIsPureFunctionOfSeed) {
  // Two channels with the same config are bit-identical even when an
  // unrelated channel (different seed) is constructed and run in between —
  // no hidden global RNG state.
  ChannelConfig cfg;
  cfg.taps = 3;
  cfg.snrDb = 25;
  cfg.seed = 11;
  Rng payload(1);
  std::array<std::vector<cint16>, kNumTx> tx;
  for (auto& w : tx) {
    w.resize(512);
    for (auto& s : w)
      s = {static_cast<i16>(static_cast<i16>(payload.next()) / 4),
           static_cast<i16>(static_cast<i16>(payload.next()) / 4)};
  }

  MimoChannel a(cfg);
  const auto outA = a.run(tx);

  ChannelConfig decoyCfg = cfg;
  decoyCfg.seed = 999;
  MimoChannel decoy(decoyCfg);
  (void)decoy.run(tx);

  MimoChannel b(cfg);
  const auto outB = b.run(tx);
  for (int r = 0; r < kNumRx; ++r) {
    ASSERT_EQ(outA[static_cast<std::size_t>(r)].size(), outB[static_cast<std::size_t>(r)].size());
    for (std::size_t i = 0; i < outA[static_cast<std::size_t>(r)].size(); ++i) {
      ASSERT_EQ(outA[static_cast<std::size_t>(r)][i].re, outB[static_cast<std::size_t>(r)][i].re);
      ASSERT_EQ(outA[static_cast<std::size_t>(r)][i].im, outB[static_cast<std::size_t>(r)][i].im);
    }
  }
}

TEST(ChannelStats, NoiseStreamIndependentOfTapCount) {
  // The noise streams are forked per receive antenna with labels disjoint
  // from the tap streams, so changing the tap count must not shift the
  // noise realization.  On the flat channel the taps are deterministic, so
  // the full output is bit-identical across tap counts.
  ChannelConfig a;
  a.flat = true;
  a.taps = 1;
  a.snrDb = 15;
  a.seed = 21;
  ChannelConfig b = a;
  b.taps = 8;

  Rng payload(3);
  std::array<std::vector<cint16>, kNumTx> tx;
  for (auto& w : tx) {
    w.resize(256);
    for (auto& s : w)
      s = {static_cast<i16>(static_cast<i16>(payload.next()) / 4),
           static_cast<i16>(static_cast<i16>(payload.next()) / 4)};
  }
  MimoChannel chA(a), chB(b);
  const auto outA = chA.run(tx), outB = chB.run(tx);
  for (int r = 0; r < kNumRx; ++r)
    for (std::size_t i = 0; i < outA[static_cast<std::size_t>(r)].size(); ++i) {
      ASSERT_EQ(outA[static_cast<std::size_t>(r)][i].re, outB[static_cast<std::size_t>(r)][i].re);
      ASSERT_EQ(outA[static_cast<std::size_t>(r)][i].im, outB[static_cast<std::size_t>(r)][i].im);
    }
}

TEST(ChannelStats, StableHashSeparatesConfigs) {
  ChannelConfig base;
  const u64 h0 = stableHash(base);
  ChannelConfig c = base;
  c.taps = 4;
  EXPECT_NE(stableHash(c), h0);
  c = base;
  c.snrDb = 30.5;
  EXPECT_NE(stableHash(c), h0);
  c = base;
  c.cfoPpm = 0.0;
  EXPECT_NE(stableHash(c), h0);
  c = base;
  c.flat = true;
  EXPECT_NE(stableHash(c), h0);
  c = base;
  c.seed = 2;
  EXPECT_NE(stableHash(c), h0);
  EXPECT_EQ(stableHash(base), h0) << "hash is a pure function";
}

}  // namespace
}  // namespace adres::dsp
