// A/B bit-exactness of the vectorized trial-generation frontend against
// the scalar reference (DESIGN.md §15): same counter-derived seeds in,
// byte-identical payload bits and receive waveforms out — across lane
// widths, tap counts, SNR points, modulations, and seeds.  This is the
// contract that lets campaigns switch frontends without perturbing
// adres.campaign.v1 checkpoint bytes.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/check.hpp"
#include "dsp/frontend.hpp"

namespace adres::dsp {
namespace {

struct TrialOut {
  std::vector<u8> bits;
  std::array<std::vector<cint16>, kNumRx> rx;
};

bool operator==(const TrialOut& a, const TrialOut& b) {
  if (a.bits != b.bits) return false;
  for (int r = 0; r < kNumRx; ++r) {
    const auto& x = a.rx[static_cast<std::size_t>(r)];
    const auto& y = b.rx[static_cast<std::size_t>(r)];
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i)
      if (x[i].re != y[i].re || x[i].im != y[i].im) return false;
  }
  return true;
}

TrialOut runTrial(const ModemConfig& mc, const ChannelConfig& cc, u64 txSeed,
                  const FrontendConfig& fe, TrialScratch& scratch) {
  TrialOut o;
  Rng txRng(txSeed);
  generateTrial(mc, cc, txRng, o.bits, o.rx, scratch, fe);
  return o;
}

TEST(FrontendAb, TransmitIntoMatchesTransmit) {
  for (const Modulation mod : {Modulation::kBpsk, Modulation::kQpsk,
                               Modulation::kQam16, Modulation::kQam64}) {
    for (const int numSymbols : {2, 4, 10}) {
      ModemConfig mc;
      mc.mod = mod;
      mc.numSymbols = numSymbols;
      Rng a(77), b(77);
      const TxPacket pkt = transmit(mc, a);
      std::vector<u8> bits;
      std::array<std::vector<cint16>, kNumTx> wave;
      TxScratch scratch;
      transmitInto(mc, b, bits, wave, scratch);
      EXPECT_EQ(pkt.bits, bits);
      for (int tx = 0; tx < kNumTx; ++tx) {
        const auto& x = pkt.waveform[static_cast<std::size_t>(tx)];
        const auto& y = wave[static_cast<std::size_t>(tx)];
        ASSERT_EQ(x.size(), y.size());
        for (std::size_t i = 0; i < x.size(); ++i) {
          ASSERT_EQ(x[i].re, y[i].re) << "tx " << tx << " sample " << i;
          ASSERT_EQ(x[i].im, y[i].im) << "tx " << tx << " sample " << i;
        }
      }
    }
  }
}

TEST(FrontendAb, QamMapBlockMatchesQamMap) {
  Rng rng(5);
  for (const Modulation mod : {Modulation::kBpsk, Modulation::kQpsk,
                               Modulation::kQam16, Modulation::kQam64}) {
    const int bps = bitsPerSymbol(mod);
    std::vector<u8> bits(static_cast<std::size_t>(96 * bps));
    for (u8& b : bits) b = rng.bit() ? 1 : 0;
    std::vector<cint16> block(96);
    qamMapBlock(mod, bits.data(), 96, block.data());
    for (int s = 0; s < 96; ++s) {
      const cint16 ref = qamMap(mod, bits, static_cast<std::size_t>(s * bps));
      EXPECT_EQ(ref.re, block[static_cast<std::size_t>(s)].re);
      EXPECT_EQ(ref.im, block[static_cast<std::size_t>(s)].im);
    }
  }
}

TEST(FrontendAb, ChannelRunIntoMatchesRunAcrossGrid) {
  ModemConfig mc;
  mc.mod = Modulation::kQam64;
  mc.numSymbols = 4;
  Rng waveRng(11);
  const TxPacket pkt = transmit(mc, waveRng);

  for (const int taps : {1, 3, 8, 16}) {
    for (const double snrDb : {5.0, 20.0, 34.0}) {
      for (const u64 seed : {1ull, 42ull, 0xDEADBEEFull}) {
        ChannelConfig cc;
        cc.taps = taps;
        cc.snrDb = snrDb;
        cc.cfoPpm = 7.5;
        cc.seed = seed;
        MimoChannel scalar(cc);
        const auto ref = scalar.run(pkt.waveform);
        for (const int lanes : {1, 2, 16, 64, 1024}) {
          MimoChannel vec(cc);  // fresh noise streams, same seed
          ChannelScratch scratch;
          std::array<std::vector<cint16>, kNumRx> out;
          vec.runInto(pkt.waveform, out, scratch, lanes);
          for (int r = 0; r < kNumRx; ++r) {
            const auto& x = ref[static_cast<std::size_t>(r)];
            const auto& y = out[static_cast<std::size_t>(r)];
            ASSERT_EQ(x.size(), y.size());
            for (std::size_t i = 0; i < x.size(); ++i) {
              ASSERT_EQ(x[i].re, y[i].re)
                  << "taps=" << taps << " snr=" << snrDb << " seed=" << seed
                  << " lanes=" << lanes << " rx=" << r << " i=" << i;
              ASSERT_EQ(x[i].im, y[i].im);
            }
          }
        }
      }
    }
  }
}

TEST(FrontendAb, GenerateTrialKindsAgree) {
  ModemConfig mc;
  mc.mod = Modulation::kQam16;
  mc.numSymbols = 6;
  ChannelConfig cc;
  cc.taps = 3;
  cc.snrDb = 18.0;
  cc.cfoPpm = 10.0;

  TrialScratch scalarScratch, vecScratch;
  for (u64 trial = 0; trial < 8; ++trial) {
    cc.seed = 1000 + trial;
    FrontendConfig scalarFe;
    scalarFe.kind = FrontendKind::kScalar;
    const TrialOut ref = runTrial(mc, cc, 500 + trial, scalarFe, scalarScratch);
    for (const int lanes : {1, 16, 160}) {
      FrontendConfig vecFe;
      vecFe.kind = FrontendKind::kVectorized;
      vecFe.lanes = lanes;
      const TrialOut got = runTrial(mc, cc, 500 + trial, vecFe, vecScratch);
      EXPECT_TRUE(ref == got) << "trial " << trial << " lanes " << lanes;
    }
  }
}

TEST(FrontendAb, ScratchReuseAcrossCellsIsClean) {
  // One scratch survives a change of packet length, CFO (rot-table rebuild)
  // and SNR — trial outputs must still match fresh-scratch runs.
  TrialScratch reused;
  for (const int numSymbols : {8, 2, 6}) {
    for (const double cfoPpm : {10.0, 0.0, 3.25}) {
      ModemConfig mc;
      mc.mod = Modulation::kQam64;
      mc.numSymbols = numSymbols;
      ChannelConfig cc;
      cc.taps = 4;
      cc.snrDb = 25.0;
      cc.cfoPpm = cfoPpm;
      cc.seed = 7;
      FrontendConfig fe;  // vectorized default
      TrialScratch fresh;
      const TrialOut a = runTrial(mc, cc, 99, fe, reused);
      const TrialOut b = runTrial(mc, cc, 99, fe, fresh);
      EXPECT_TRUE(a == b) << numSymbols << " syms, cfo " << cfoPpm;
    }
  }
}

TEST(FrontendAb, KindNamesRoundTripAndParseFailsLoudly) {
  EXPECT_STREQ("scalar", frontendKindName(FrontendKind::kScalar));
  EXPECT_STREQ("vectorized", frontendKindName(FrontendKind::kVectorized));
  EXPECT_EQ(FrontendKind::kScalar, parseFrontendKind("scalar"));
  EXPECT_EQ(FrontendKind::kVectorized, parseFrontendKind("vectorized"));
  EXPECT_THROW(parseFrontendKind("simd"), SimError);
}

}  // namespace
}  // namespace adres::dsp
