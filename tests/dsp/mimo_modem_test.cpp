// MIMO channel estimation, equalization, and the end-to-end modem.
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/mimo.hpp"
#include "dsp/modem.hpp"
#include "dsp/sync.hpp"

namespace adres::dsp {
namespace {

TEST(Mimo, FlatChannelEstimateIsIdentity) {
  // Send the MIMO LTFs through a flat identity channel; the per-tone
  // estimate must be ~kLtfAmpQ15 * I.
  ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 60;
  cc.cfoPpm = 0;
  MimoChannel ch(cc);
  const auto rx = ch.run(mimoPreamble());

  const int base = kStfLen + kLtfLen;
  std::array<std::vector<cint16>, kNumRx> l1, l2;
  for (int a = 0; a < kNumRx; ++a) {
    l1[static_cast<std::size_t>(a)] = rxFft(std::vector<cint16>(
        rx[static_cast<std::size_t>(a)].begin() + base + kCpLen,
        rx[static_cast<std::size_t>(a)].begin() + base + kCpLen + kNfft));
    l2[static_cast<std::size_t>(a)] = rxFft(std::vector<cint16>(
        rx[static_cast<std::size_t>(a)].begin() + base + kSymbolLen + kCpLen,
        rx[static_cast<std::size_t>(a)].begin() + base + kSymbolLen + kCpLen + kNfft));
  }
  const auto est = estimateChannel(l1, l2);
  ASSERT_EQ(est.size(), static_cast<std::size_t>(kUsedCarriers));
  for (const ChannelEst& e : est) {
    EXPECT_NEAR(e.h[0][0].re, kLtfAmpQ15, 1200);
    EXPECT_NEAR(e.h[1][1].re, kLtfAmpQ15, 1200);
    EXPECT_NEAR(std::abs(e.h[0][1].re), 0, 1200);
    EXPECT_NEAR(std::abs(e.h[1][0].re), 0, 1200);
  }
}

TEST(Mimo, EqualizerInvertsKnownMatrix) {
  // H = [1 0.5; -0.5 1] * amp: W*H must be ~identity at QAM scale.
  ChannelEst e;
  const i16 amp = kLtfAmpQ15;
  e.h[0][0] = {amp, 0};
  e.h[0][1] = {static_cast<i16>(amp / 2), 0};
  e.h[1][0] = {static_cast<i16>(-amp / 2), 0};
  e.h[1][1] = {amp, 0};
  const EqMatrix w = equalizerCoeffOne(e);
  // Apply W to r = H * x for x = (8000, 0) and (0, 8000).
  for (int col = 0; col < 2; ++col) {
    cint16 x[2] = {{0, 0}, {0, 0}};
    x[col] = {8000, 0};
    // r = (H/amp) * x in Q15: h entries are amp-scaled.
    cint16 r[2];
    for (int i = 0; i < 2; ++i) {
      const cint16 p0 = e.h[i][0] * x[0];
      const cint16 p1 = e.h[i][1] * x[1];
      // h is amp-scaled: divide by amp via mulQ15 with 32768^2/amp ... the
      // modem's actual scaling has H unit-magnitude; emulate by rescaling.
      const i32 re = (i32{p0.re} + p1.re) * 32768 / amp;
      const i32 im = (i32{p0.im} + p1.im) * 32768 / amp;
      r[i] = {sat16(re), sat16(im)};
    }
    cint16 y[2];
    for (int i = 0; i < 2; ++i) {
      const cint16 q0 = w.w[i][0] * r[0];
      const cint16 q1 = w.w[i][1] * r[1];
      cint16 s = q0 + q1;  // W is Q13: x4 restores scale
      s = s + s;
      y[i] = s + s;
    }
    EXPECT_NEAR(y[col].re, 8000, 700) << "col " << col;
    EXPECT_NEAR(y[1 - col].re, 0, 700);
    EXPECT_NEAR(y[col].im, 0, 700);
  }
}

TEST(Mimo, EqualizerHandlesTinyDeterminant) {
  ChannelEst e{};  // all zeros -> det 0 -> must not crash or divide by 0
  const EqMatrix w = equalizerCoeffOne(e);
  (void)w;
  SUCCEED();
}

TEST(Modem, RatesMatchPaperOperatingPoint) {
  ModemConfig cfg;
  cfg.mod = Modulation::kQam64;
  EXPECT_EQ(bitsPerOfdmSymbol(cfg), 576);
  EXPECT_NEAR(rawRateMbps(cfg), 144.0, 1e-9) << "100 Mbps+ operating point";
}

TEST(Modem, TransmitShapes) {
  ModemConfig cfg;
  cfg.numSymbols = 5;
  Rng rng(17);
  const TxPacket pkt = transmit(cfg, rng);
  EXPECT_EQ(pkt.bits.size(), 5u * 576u);
  for (const auto& w : pkt.waveform)
    EXPECT_EQ(w.size(),
              static_cast<std::size_t>(kPreambleLen + 5 * kSymbolLen));
}

class ModemEndToEnd : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModemEndToEnd, ZeroBerOnCleanChannel) {
  ModemConfig cfg;
  cfg.mod = GetParam();
  cfg.numSymbols = 6;
  Rng rng(23);
  const TxPacket pkt = transmit(cfg, rng);

  ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 45;
  cc.cfoPpm = 8;
  MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);

  const RxTrace tr = receive(cfg, rx);
  ASSERT_TRUE(tr.detected);
  ASSERT_EQ(tr.bits.size(), pkt.bits.size());
  EXPECT_EQ(bitErrors(tr.bits, pkt.bits), 0)
      << "flat channel, 45 dB SNR, 8 ppm CFO";
}

INSTANTIATE_TEST_SUITE_P(Mods, ModemEndToEnd,
                         ::testing::Values(Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Modem, MultipathHighSnr) {
  ModemConfig cfg;
  cfg.mod = Modulation::kQam64;
  cfg.numSymbols = 8;
  int totalErr = 0, totalBits = 0;
  // Averaged over enough independent channel draws to absorb the occasional
  // deep spectral fade — uncoded QAM-64 over a random 2-tap channel has a
  // fade-limited error floor on unlucky draws (see the campaign waterfall).
  for (u64 seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 31);
    const TxPacket pkt = transmit(cfg, rng);
    ChannelConfig cc;
    cc.taps = 2;
    cc.snrDb = 38;
    cc.cfoPpm = 5;
    cc.seed = seed;
    MimoChannel ch(cc);
    const auto rx = ch.run(pkt.waveform);
    const RxTrace tr = receive(cfg, rx);
    if (!tr.detected) {
      ADD_FAILURE() << "packet lost on seed " << seed;
      continue;
    }
    totalErr += bitErrors(tr.bits, pkt.bits);
    totalBits += static_cast<int>(pkt.bits.size());
  }
  EXPECT_LT(static_cast<double>(totalErr) / totalBits, 0.03)
      << "QAM-64 over 2-tap multipath at 38 dB";
}

TEST(Modem, BerDegradesWithSnr) {
  // Monotone-ish BER vs SNR: low SNR must be strictly worse than high SNR.
  ModemConfig cfg;
  cfg.mod = Modulation::kQam64;
  cfg.numSymbols = 8;
  auto berAt = [&](double snr) {
    int err = 0, bits = 0;
    for (u64 seed = 1; seed <= 3; ++seed) {
      Rng rng(seed * 7 + 1);
      const TxPacket pkt = transmit(cfg, rng);
      ChannelConfig cc;
      cc.flat = true;
      cc.snrDb = snr;
      cc.cfoPpm = 0;
      cc.seed = seed;
      MimoChannel ch(cc);
      const RxTrace tr = receive(cfg, ch.run(pkt.waveform));
      if (!tr.detected) {
        err += static_cast<int>(pkt.bits.size());
      } else {
        err += bitErrors(tr.bits, pkt.bits);
      }
      bits += static_cast<int>(pkt.bits.size());
    }
    return static_cast<double>(err) / bits;
  };
  const double low = berAt(8.0);
  const double high = berAt(40.0);
  EXPECT_GT(low, 0.02) << "8 dB must produce plenty of QAM-64 errors";
  EXPECT_LT(high, 1e-3);
}

TEST(Modem, DetectionFailsOnPureNoise) {
  ModemConfig cfg;
  std::array<std::vector<cint16>, kNumRx> noise;
  Rng rng(77);
  for (auto& w : noise) {
    w.resize(2000);
    for (cint16& v : w)
      v = {static_cast<i16>(static_cast<i16>(rng.next()) / 16),
           static_cast<i16>(static_cast<i16>(rng.next()) / 16)};
  }
  const RxTrace tr = receive(cfg, noise);
  EXPECT_FALSE(tr.detected);
}

}  // namespace
}  // namespace adres::dsp
