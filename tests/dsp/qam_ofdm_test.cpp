// QAM mapping and OFDM carrier-plan tests.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "dsp/ofdm.hpp"
#include "dsp/qam.hpp"

namespace adres::dsp {
namespace {

class QamRoundTrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(QamRoundTrip, AllSymbolsRoundTrip) {
  const Modulation m = GetParam();
  const int n = bitsPerSymbol(m);
  for (u32 v = 0; v < (1u << n); ++v) {
    std::vector<u8> bits(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) bits[static_cast<std::size_t>(i)] = (v >> i) & 1;
    const cint16 s = qamMap(m, bits, 0);
    std::vector<u8> back(static_cast<std::size_t>(n), 0xFF);
    qamDemap(m, s, back, 0);
    EXPECT_EQ(back, bits) << "constellation point " << v;
  }
}

TEST_P(QamRoundTrip, SurvivesNoiseWithinHalfUnit) {
  const Modulation m = GetParam();
  const int n = bitsPerSymbol(m);
  const i16 unit = qamUnit(m);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<u8> bits(static_cast<std::size_t>(n));
    for (auto& b : bits) b = rng.bit();
    cint16 s = qamMap(m, bits, 0);
    // Perturb by strictly less than one unit (decision distance).
    s.re = sat16(s.re + static_cast<i16>(rng.below(static_cast<u64>(unit))) -
                 unit / 2);
    s.im = sat16(s.im + static_cast<i16>(rng.below(static_cast<u64>(unit))) -
                 unit / 2);
    std::vector<u8> back(static_cast<std::size_t>(n));
    qamDemap(m, s, back, 0);
    EXPECT_EQ(back, bits);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModulations, QamRoundTrip,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Qam, BitsPerSymbol) {
  EXPECT_EQ(bitsPerSymbol(Modulation::kBpsk), 1);
  EXPECT_EQ(bitsPerSymbol(Modulation::kQpsk), 2);
  EXPECT_EQ(bitsPerSymbol(Modulation::kQam16), 4);
  EXPECT_EQ(bitsPerSymbol(Modulation::kQam64), 6);
}

TEST(Qam, GrayNeighboursDifferInOneBit) {
  // Adjacent QAM-64 I-levels must differ in exactly one bit (gray code).
  const Modulation m = Modulation::kQam64;
  const i16 unit = qamUnit(m);
  u32 prev = 0;
  for (int level = -7; level <= 7; level += 2) {
    std::vector<u8> bits(6);
    qamDemap(m, {static_cast<i16>(level * unit), static_cast<i16>(-7 * unit)},
             bits, 0);
    u32 v = 0;
    for (int i = 0; i < 3; ++i) v |= static_cast<u32>(bits[static_cast<std::size_t>(i)]) << i;
    if (level > -7) {
      const u32 x = v ^ prev;
      EXPECT_EQ(x & (x - 1), 0u) << "non-gray transition at level " << level;
      EXPECT_NE(x, 0u);
    }
    prev = v;
  }
}

TEST(Qam, VectorHelpersRoundTrip) {
  Rng rng(6);
  std::vector<u8> bits(6 * 48);
  for (auto& b : bits) b = rng.bit();
  const auto syms = qamModulate(Modulation::kQam64, bits);
  EXPECT_EQ(syms.size(), 48u);
  EXPECT_EQ(qamDemodulate(Modulation::kQam64, syms), bits);
}

TEST(Ofdm, CarrierPlanCounts) {
  EXPECT_EQ(dataCarrierIdx().size(), 48u);
  EXPECT_EQ(usedCarrierIdx().size(), 52u);
  // No data carrier collides with a pilot or DC.
  for (int k : dataCarrierIdx()) {
    EXPECT_NE(k, 0);
    for (int p : kPilotIdx) EXPECT_NE(k, p);
    EXPECT_GE(k, -26);
    EXPECT_LE(k, 26);
  }
}

TEST(Ofdm, MapGatherRoundTrip) {
  Rng rng(8);
  std::vector<cint16> data(kDataCarriers);
  for (cint16& v : data)
    v = {static_cast<i16>(rng.next()), static_cast<i16>(rng.next())};
  const auto spec = mapSubcarriers(data, 3, 9000);
  EXPECT_EQ(gatherDataCarriers(spec), data);
  // Zero carriers are actually zero.
  for (int k = 27; k <= 37; ++k)
    EXPECT_EQ(spec[static_cast<std::size_t>(k)], cint16{});
  EXPECT_EQ(spec[0], cint16{}) << "DC null";
  // Pilots carry the per-symbol polarity.
  const auto pilots = gatherPilots(spec);
  const i16 pol = pilotPolarity(3);
  for (int p = 0; p < kPilotCarriers; ++p) {
    EXPECT_EQ(pilots[static_cast<std::size_t>(p)].re,
              static_cast<i16>(kPilotBase[static_cast<std::size_t>(p)] * pol * 9000));
    EXPECT_EQ(pilots[static_cast<std::size_t>(p)].im, 0);
  }
}

TEST(Ofdm, UsedCarriersContainDataAndPilots) {
  std::vector<cint16> data(kDataCarriers);
  for (int i = 0; i < kDataCarriers; ++i)
    data[static_cast<std::size_t>(i)] = {static_cast<i16>(i + 1), 0};
  const auto spec = mapSubcarriers(data, 0, 9000);
  const auto used = gatherUsedCarriers(spec);
  EXPECT_EQ(used.size(), 52u);
  int nonzero = 0;
  for (const cint16& v : used)
    if (!(v == cint16{})) ++nonzero;
  EXPECT_EQ(nonzero, 52);
}

TEST(Ofdm, CyclicPrefix) {
  std::vector<cint16> sym(kNfft);
  for (int i = 0; i < kNfft; ++i) sym[static_cast<std::size_t>(i)] = {static_cast<i16>(i), 0};
  const auto withCp = addCyclicPrefix(sym);
  ASSERT_EQ(withCp.size(), static_cast<std::size_t>(kSymbolLen));
  for (int i = 0; i < kCpLen; ++i)
    EXPECT_EQ(withCp[static_cast<std::size_t>(i)].re, kNfft - kCpLen + i);
  EXPECT_EQ(withCp[kCpLen].re, 0);
}

TEST(Ofdm, SymbolTiming) {
  EXPECT_EQ(kSymbolLen, 80);
  EXPECT_NEAR(kSymbolTimeUs, 4.0, 1e-12) << "4 us OFDM symbol at 20 MHz";
}

TEST(Ofdm, PilotPolarityIsSigns) {
  for (int s = 0; s < 64; ++s) {
    const i16 p = pilotPolarity(s);
    EXPECT_TRUE(p == 1 || p == -1);
  }
}

}  // namespace
}  // namespace adres::dsp
