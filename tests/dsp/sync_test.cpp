// Preamble generation + synchronization chain tests.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/channel.hpp"
#include "dsp/preamble.hpp"
#include "dsp/sync.hpp"
#include "dsp/trig.hpp"

namespace adres::dsp {
namespace {

TEST(Preamble, StfIsSixteenSamplePeriodic) {
  const auto& stf = stfTime();
  ASSERT_EQ(stf.size(), static_cast<std::size_t>(kStfLen));
  for (int n = 0; n + kStfPeriod < kStfLen; ++n) {
    EXPECT_EQ(stf[static_cast<std::size_t>(n)],
              stf[static_cast<std::size_t>(n + kStfPeriod)])
        << "sample " << n;
  }
}

TEST(Preamble, LtfFieldRepeatsTwice) {
  const auto ltf = ltfField();
  ASSERT_EQ(ltf.size(), static_cast<std::size_t>(kLtfLen));
  for (int n = 0; n < kNfft; ++n)
    EXPECT_EQ(ltf[static_cast<std::size_t>(kLtfCp + n)],
              ltf[static_cast<std::size_t>(kLtfCp + kNfft + n)]);
}

TEST(Preamble, MimoPreambleShapes) {
  const auto pre = mimoPreamble();
  for (const auto& w : pre)
    EXPECT_EQ(w.size(), static_cast<std::size_t>(kPreambleLen));
  // MIMO-LTF symbols are P-mapped: antenna1's second MIMO-LTF is the
  // negation of its first.
  const int base = kStfLen + kLtfLen;
  for (int n = 0; n < kSymbolLen; ++n) {
    const cint16 s0 = pre[1][static_cast<std::size_t>(base + n)];
    const cint16 s1 = pre[1][static_cast<std::size_t>(base + kSymbolLen + n)];
    EXPECT_EQ(s1.re, static_cast<i16>(-s0.re));
    EXPECT_EQ(s1.im, static_cast<i16>(-s0.im));
  }
}

TEST(Sync, AcorrDetectsStfNotNoise) {
  const auto& stf = stfTime();
  std::vector<cint16> sig(stf.begin(), stf.end());
  sig.resize(300, cint16{});
  const AcorrResult onStf = acorrAt(sig, 8);
  EXPECT_TRUE(onStf.detected());

  Rng rng(3);
  std::vector<cint16> noise(300);
  for (cint16& v : noise)
    v = {static_cast<i16>(static_cast<i16>(rng.next()) / 8),
         static_cast<i16>(static_cast<i16>(rng.next()) / 8)};
  int detections = 0;
  for (int d = 0; d < 200; ++d)
    if (acorrAt(noise, d).detected()) ++detections;
  EXPECT_LT(detections, 5) << "noise must not look periodic";
}

TEST(Sync, PacketDetectFindsPreambleStart) {
  std::vector<cint16> sig(40, cint16{});  // leading silence
  const auto& stf = stfTime();
  sig.insert(sig.end(), stf.begin(), stf.end());
  sig.resize(400, cint16{});
  const int d = packetDetect(sig);
  // The correlator may fire up to one STF period early (partial overlap
  // already correlates); anywhere within [start-16, start+16] is a lock.
  EXPECT_GE(d, 24);
  EXPECT_LE(d, 56) << "detection within one STF period of packet start";
}

TEST(Sync, XcorrPeaksAtLtfStart) {
  std::vector<cint16> sig(50, cint16{});
  const auto ltf = ltfField();
  sig.insert(sig.end(), ltf.begin(), ltf.end());
  sig.resize(400, cint16{});
  // First LTF period starts at 50 + 32.
  const int peak = xcorrPeak(sig, 60, 110);
  EXPECT_EQ(peak, 82);
}

class CfoSweep : public ::testing::TestWithParam<int> {};

TEST_P(CfoSweep, StfEstimatorRecoversOffset) {
  // Inject a known CFO (in Q16 turns/sample) onto the STF and check the
  // estimator returns the compensating step.
  const int inject = GetParam();
  const auto& stf = stfTime();
  std::vector<cint16> rot(stf.size());
  for (std::size_t n = 0; n < stf.size(); ++n) {
    const cint16 ph = phasorQ15(static_cast<u16>(
        static_cast<i32>(inject) * static_cast<i32>(n)));
    rot[n] = stf[n] * ph;
  }
  const i16 est = cfoEstimateStf(rot, 16);
  // The saturating lane accumulation quantizes a few percent at the
  // largest offsets; the fine (LTF, lag-64) stage absorbs that residual.
  EXPECT_NEAR(est, -inject, 8) << "coarse step within lane quantization";
}

INSTANTIATE_TEST_SUITE_P(Offsets, CfoSweep,
                         ::testing::Values(-160, -80, -20, 0, 20, 80, 160));
// +-160 Q16 units/sample ~= +-49 kHz ~= 20 ppm at 2.4 GHz.

TEST(Sync, LtfEstimatorIsFiner) {
  const int inject = 40;
  const auto& sym = ltfSymbolTime();
  std::vector<cint16> two;
  for (int rep = 0; rep < 2; ++rep)
    for (const cint16& v : sym) two.push_back(v);
  for (std::size_t n = 0; n < two.size(); ++n)
    two[n] = two[n] * phasorQ15(static_cast<u16>(static_cast<i32>(inject) *
                                                 static_cast<i32>(n)));
  const i16 est = cfoEstimateLtf(two, 0);
  EXPECT_NEAR(est, -inject, 1);
}

TEST(Sync, FshiftCompensatesRotation) {
  // Rotate, compensate, compare (allowing Q15 phasor-recurrence decay).
  const auto& sym = ltfSymbolTime();
  std::vector<cint16> rot(sym.size());
  const int step = 50;
  for (std::size_t n = 0; n < sym.size(); ++n)
    rot[n] = sym[n] * phasorQ15(static_cast<u16>(static_cast<i32>(step) *
                                                 static_cast<i32>(n)));
  const auto fixed = fshift(rot, 0, static_cast<int>(rot.size()),
                            static_cast<i16>(-step));
  double err = 0, ref = 0;
  for (std::size_t n = 0; n < sym.size(); ++n) {
    err += std::hypot(double(fixed[n].re) - sym[n].re,
                      double(fixed[n].im) - sym[n].im);
    ref += std::hypot(double(sym[n].re), double(sym[n].im));
  }
  EXPECT_LT(err / ref, 0.06) << "phasor-recurrence magnitude decay bound";
}

TEST(Sync, ChannelCfoVisibleToEstimator) {
  // End-to-end: the channel injects ppm-scale CFO; the STF estimator must
  // see it through the MIMO channel.
  ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 12;
  MimoChannel ch(cc);
  const auto rx = ch.run(mimoPreamble());
  const double expectTurns = cfoTurnsPerSample(cc) * 65536.0;
  const i16 est = cfoEstimateStf(rx[0], 16);
  EXPECT_NEAR(-est, expectTurns, 6.0);
}

}  // namespace
}  // namespace adres::dsp
