// Fixed-point trig and FFT properties.
#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/trig.hpp"

namespace adres::dsp {
namespace {

TEST(Trig, CardinalAngles) {
  EXPECT_EQ(sinQ15(0), 0);
  EXPECT_NEAR(sinQ15(16384), 32767, 1);   // 1/4 turn
  EXPECT_EQ(sinQ15(32768), 0);            // 1/2 turn
  EXPECT_NEAR(sinQ15(49152), -32767, 1);  // 3/4 turn
  EXPECT_NEAR(cosQ15(0), 32767, 1);
  EXPECT_NEAR(cosQ15(32768), -32767, 1);
}

TEST(Trig, MatchesDoubleSinCos) {
  for (u32 t = 0; t < 65536; t += 97) {
    const double a = 2.0 * M_PI * t / 65536.0;
    EXPECT_NEAR(sinQ15(static_cast<u16>(t)), std::sin(a) * 32767.0, 200.0)
        << "t=" << t;
    EXPECT_NEAR(cosQ15(static_cast<u16>(t)), std::cos(a) * 32767.0, 200.0);
  }
}

TEST(Trig, PhasorIsUnitMagnitude) {
  for (u32 t = 0; t < 65536; t += 1111) {
    const cint16 p = phasorQ15(static_cast<u16>(t));
    const double mag = std::hypot(p.re / 32768.0, p.im / 32768.0);
    EXPECT_NEAR(mag, 1.0, 0.01);
  }
}

TEST(Trig, Atan2MatchesDouble) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const i32 re = static_cast<i32>(rng.below(65536)) - 32768;
    const i32 im = static_cast<i32>(rng.below(65536)) - 32768;
    if (re == 0 && im == 0) continue;
    const double a = std::atan2(static_cast<double>(im), static_cast<double>(re));
    double turns = a / (2.0 * M_PI);
    if (turns < 0) turns += 1.0;
    const double got = atan2Turns(im, re) / 65536.0;
    double diff = std::fabs(got - turns);
    if (diff > 0.5) diff = 1.0 - diff;
    EXPECT_LT(diff, 0.002) << "re=" << re << " im=" << im;
  }
}

TEST(Trig, Atan2Origin) { EXPECT_EQ(atan2Turns(0, 0), 0); }

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<cint16> x(64, cint16{});
  x[0] = {25600, 0};
  fftScaled(x);
  for (const cint16& v : x) {
    EXPECT_NEAR(v.re, 25600 / 64, 8);
    EXPECT_NEAR(v.im, 0, 8);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  // x[n] = A e^{+j 2 pi 5 n / 64} -> bin 5 gets A/64 * 64 = A (scaled /N
  // -> A... fftScaled gives A at bin 5 scaled by 1).
  std::vector<cint16> x(64);
  for (int n = 0; n < 64; ++n) {
    const u16 t = static_cast<u16>((5 * n * 1024) & 0xFFFF);
    const cint16 p = phasorQ15(t);
    x[static_cast<std::size_t>(n)] = {static_cast<i16>(p.re / 4),
                                      static_cast<i16>(p.im / 4)};
  }
  fftScaled(x);
  // Energy concentrated in bin 5.
  int best = 0;
  i32 bestMag = -1;
  for (int k = 0; k < 64; ++k) {
    const i32 m = std::abs(i32{x[static_cast<std::size_t>(k)].re}) +
                  std::abs(i32{x[static_cast<std::size_t>(k)].im});
    if (m > bestMag) {
      bestMag = m;
      best = k;
    }
  }
  EXPECT_EQ(best, 5);
  EXPECT_NEAR(x[5].re, 32767 / 4, 300);
  EXPECT_NEAR(x[5].im, 0, 300);
}

TEST(Fft, InverseRoundTrip) {
  // x -> fftScaled (1/N) -> x8 -> ifftScaled -> x8 recovers x exactly up
  // to quantization (8*8 = 64 = N), with all intermediates in range.
  Rng rng(7);
  std::vector<cint16> x(64);
  for (cint16& v : x)
    v = {static_cast<i16>(static_cast<i16>(rng.next()) / 8),
         static_cast<i16>(static_cast<i16>(rng.next()) / 8)};
  std::vector<cint16> y = x;
  fftScaled(y);
  for (cint16& v : y) {
    v.re = sat16(i32{v.re} * 8);
    v.im = sat16(i32{v.im} * 8);
  }
  ifftScaled(y);
  for (cint16& v : y) {
    v.re = sat16(i32{v.re} * 8);
    v.im = sat16(i32{v.im} * 8);
  }
  double err = 0, ref = 0;
  for (int n = 0; n < 64; ++n) {
    err += std::hypot(double(y[static_cast<std::size_t>(n)].re) - x[static_cast<std::size_t>(n)].re,
                      double(y[static_cast<std::size_t>(n)].im) - x[static_cast<std::size_t>(n)].im);
    ref += std::hypot(double(x[static_cast<std::size_t>(n)].re), double(x[static_cast<std::size_t>(n)].im));
  }
  EXPECT_LT(err / ref, 0.12) << "round-trip error within 16-bit quantization";
}

TEST(Fft, LinearityProperty) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<cint16> a(64), b(64), sum(64);
    for (int n = 0; n < 64; ++n) {
      a[static_cast<std::size_t>(n)] = {static_cast<i16>(static_cast<i16>(rng.next()) / 8),
                                        static_cast<i16>(static_cast<i16>(rng.next()) / 8)};
      b[static_cast<std::size_t>(n)] = {static_cast<i16>(static_cast<i16>(rng.next()) / 8),
                                        static_cast<i16>(static_cast<i16>(rng.next()) / 8)};
      sum[static_cast<std::size_t>(n)] = a[static_cast<std::size_t>(n)] + b[static_cast<std::size_t>(n)];
    }
    fftScaled(a);
    fftScaled(b);
    fftScaled(sum);
    for (int k = 0; k < 64; ++k) {
      EXPECT_NEAR(sum[static_cast<std::size_t>(k)].re,
                  a[static_cast<std::size_t>(k)].re + b[static_cast<std::size_t>(k)].re, 24);
      EXPECT_NEAR(sum[static_cast<std::size_t>(k)].im,
                  a[static_cast<std::size_t>(k)].im + b[static_cast<std::size_t>(k)].im, 24);
    }
  }
}

TEST(Fft, ParsevalWithinScaling) {
  Rng rng(13);
  std::vector<cint16> x(64);
  for (cint16& v : x)
    v = {static_cast<i16>(static_cast<i16>(rng.next()) / 4),
         static_cast<i16>(static_cast<i16>(rng.next()) / 4)};
  double timeE = 0;
  for (const cint16& v : x)
    timeE += double(v.re) * v.re + double(v.im) * v.im;
  std::vector<cint16> y = x;
  fftScaled(y);
  double freqE = 0;
  for (const cint16& v : y)
    freqE += double(v.re) * v.re + double(v.im) * v.im;
  // FFT/N: sum|X/N|^2 = sum|x|^2 / N.
  EXPECT_NEAR(freqE, timeE / 64.0, timeE / 64.0 * 0.15);
}

TEST(Fft, TwiddleTable) {
  EXPECT_EQ(twiddle(0, 64).re, 32767);
  EXPECT_EQ(twiddle(0, 64).im, 0);
  EXPECT_NEAR(twiddle(16, 64).re, 0, 2);   // -j
  EXPECT_NEAR(twiddle(16, 64).im, -32767, 2);
  EXPECT_NEAR(twiddle(32, 64).re, -32767, 2);
}

TEST(Fft, BitReversalIsInvolution) {
  const auto t = bitReverseTable(64);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(t[static_cast<std::size_t>(t[static_cast<std::size_t>(i)])], i);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cint16> x(48);
  EXPECT_THROW(fftScaled(x), SimError);
}

}  // namespace
}  // namespace adres::dsp
