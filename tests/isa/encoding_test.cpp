// 128-bit bundle encode/decode round trips.
#include "isa/encoding.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace adres {
namespace {

bool sameInstr(const Instr& a, const Instr& b) {
  if (a.op != b.op || a.guard != b.guard || a.src1 != b.src1 ||
      a.useImm != b.useImm)
    return false;
  // Stores carry src3 in the dst field (no destination register).
  if (isStore(a.op)) {
    if (a.src3 != b.src3) return false;
  } else if (a.dst != b.dst) {
    return false;
  }
  if (a.useImm) return a.imm == b.imm;
  return a.src2 == b.src2 && (isStore(a.op) || a.src3 == b.src3);
}

TEST(Encoding, BundleIs16Bytes) {
  Bundle b;
  EXPECT_EQ(encodeBundle(b).size(), static_cast<std::size_t>(kBundleBytes));
}

TEST(Encoding, SimpleRoundTrip) {
  Bundle b;
  b.slot[0].op = Opcode::ADD;
  b.slot[0].dst = 3;
  b.slot[0].src1 = 4;
  b.slot[0].src2 = 5;
  b.slot[1].op = Opcode::LD_I;
  b.slot[1].dst = 7;
  b.slot[1].src1 = 8;
  b.slot[1].useImm = true;
  b.slot[1].imm = -12;
  b.slot[2].op = Opcode::ST_I;
  b.slot[2].src1 = 9;
  b.slot[2].src2 = 10;
  b.slot[2].src3 = 11;
  const Bundle d = decodeBundle(encodeBundle(b));
  for (int i = 0; i < kVliwSlots; ++i) EXPECT_TRUE(sameInstr(b.slot[i], d.slot[i]));
}

TEST(Encoding, GuardedAndImmediateExtremes) {
  Bundle b;
  b.slot[0].op = Opcode::BR;
  b.slot[0].guard = 15;
  b.slot[0].useImm = true;
  b.slot[0].imm = -2048;
  b.slot[1].op = Opcode::MOVI;
  b.slot[1].dst = 63;
  b.slot[1].useImm = true;
  b.slot[1].imm = 2047;
  b.slot[2].op = Opcode::MOVIH;
  b.slot[2].dst = 1;
  b.slot[2].src1 = 1;
  b.slot[2].useImm = true;
  b.slot[2].imm = 4095;  // unsigned control immediate
  const Bundle d = decodeBundle(encodeBundle(b));
  EXPECT_EQ(d.slot[0].imm, -2048);
  EXPECT_EQ(d.slot[1].imm, 2047);
  EXPECT_EQ(d.slot[2].imm, 4095) << "MOVIH immediate decodes unsigned";
}

TEST(Encoding, ProgramImageLayout) {
  std::vector<Bundle> prog(5);
  prog[2].slot[0].op = Opcode::HALT;
  const auto image = encodeProgram(prog);
  EXPECT_EQ(image.size(), 5u * kBundleBytes);
  const auto back = decodeProgram(image);
  ASSERT_EQ(back.size(), 5u);
  EXPECT_EQ(back[2].slot[0].op, Opcode::HALT);
}

TEST(Encoding, RejectsWrongSize) {
  EXPECT_THROW(decodeBundle(std::vector<u8>(15)), SimError);
  EXPECT_THROW(decodeProgram(std::vector<u8>(17)), SimError);
}

TEST(Encoding, RandomizedRoundTrip) {
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    Bundle b;
    for (auto& s : b.slot) {
      s.op = static_cast<Opcode>(rng.below(static_cast<u64>(kOpcodeCount)));
      s.guard = static_cast<u8>(rng.below(16));
      s.dst = static_cast<u8>(rng.below(64));
      s.src1 = static_cast<u8>(rng.below(64));
      s.useImm = rng.bit();
      if (s.useImm) {
        if (s.op == Opcode::C4SHUF || s.op == Opcode::MOVIH) {
          s.imm = static_cast<i32>(rng.below(4096));
        } else {
          s.imm = static_cast<i32>(rng.below(4096)) - 2048;
        }
      } else {
        s.src2 = static_cast<u8>(rng.below(64));
        s.src3 = static_cast<u8>(rng.below(64));
      }
    }
    const Bundle d = decodeBundle(encodeBundle(b));
    for (int i = 0; i < kVliwSlots; ++i)
      EXPECT_TRUE(sameInstr(b.slot[i], d.slot[i])) << "slot " << i;
  }
}

TEST(Validate, SlotLegality) {
  Instr br;
  br.op = Opcode::BR;
  br.useImm = true;
  br.imm = 1;
  EXPECT_NO_THROW(validate(br, 0));
  EXPECT_THROW(validate(br, 1), SimError) << "branch only on slot/FU 0";

  Instr div;
  div.op = Opcode::DIV;
  EXPECT_NO_THROW(validate(div, 1));
  EXPECT_THROW(validate(div, 2), SimError);

  Instr ld;
  ld.op = Opcode::LD_I;
  EXPECT_NO_THROW(validate(ld, 2));
  EXPECT_THROW(validate(ld, 5), SimError) << "loads only on FUs 0-3";
}

TEST(Validate, ImmediateRanges) {
  Instr in;
  in.op = Opcode::ADD;
  in.useImm = true;
  in.imm = 5000;
  EXPECT_THROW(validate(in, 0), SimError);
  in.imm = -3000;
  EXPECT_THROW(validate(in, 0), SimError);
  in.imm = 100;
  EXPECT_NO_THROW(validate(in, 0));

  Instr shuf;
  shuf.op = Opcode::C4SHUF;
  shuf.useImm = false;
  EXPECT_THROW(validate(shuf, 0), SimError) << "C4SHUF requires useImm";
}

TEST(Disassembly, ReadableStrings) {
  Instr in;
  in.op = Opcode::ADD;
  in.dst = 1;
  in.src1 = 2;
  in.useImm = true;
  in.imm = 7;
  EXPECT_EQ(toString(in), "ADD r1, r2, #7");
  in.guard = 3;
  EXPECT_EQ(toString(in), "(p3) ADD r1, r2, #7");
}

}  // namespace
}  // namespace adres
