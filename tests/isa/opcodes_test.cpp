// Table 1 metadata: groups, latencies, FU coverage.
#include "isa/opcodes.hpp"

#include <gtest/gtest.h>

namespace adres {
namespace {

TEST(OpInfo, Table1Latencies) {
  EXPECT_EQ(opInfo(Opcode::ADD).latency, 1);
  EXPECT_EQ(opInfo(Opcode::AND).latency, 1);
  EXPECT_EQ(opInfo(Opcode::LSL).latency, 1);
  EXPECT_EQ(opInfo(Opcode::EQ).latency, 1);
  EXPECT_EQ(opInfo(Opcode::PRED_EQ).latency, 1);
  EXPECT_EQ(opInfo(Opcode::MUL).latency, 2);
  EXPECT_EQ(opInfo(Opcode::JMP).latency, 2);
  EXPECT_EQ(opInfo(Opcode::BR).latency, 3);
  EXPECT_EQ(opInfo(Opcode::LD_I).latency, 5);
  EXPECT_EQ(opInfo(Opcode::ST_I).latency, 1);
  EXPECT_EQ(opInfo(Opcode::C4ADD).latency, 1);
  EXPECT_EQ(opInfo(Opcode::D4PROD).latency, 3);
  EXPECT_EQ(opInfo(Opcode::DIV).latency, 8);
}

TEST(OpInfo, Table1FuCoverage) {
  EXPECT_EQ(opInfo(Opcode::ADD).fuMask, 0xFFFF) << "arith on all 16 FUs";
  EXPECT_EQ(opInfo(Opcode::BR).fuMask, 0x0001) << "branch on FU0 only";
  EXPECT_EQ(opInfo(Opcode::ST_I).fuMask, 0x000F) << "stores on FUs 0-3";
  EXPECT_EQ(opInfo(Opcode::LD_I).fuMask, 0x000F) << "loads on FUs 0-3";
  EXPECT_EQ(opInfo(Opcode::DIV).fuMask, 0x0003) << "2 hardwired dividers";
  EXPECT_EQ(opInfo(Opcode::C4PROD).fuMask, 0xFFFF);
}

TEST(OpInfo, GroupAssignment) {
  EXPECT_EQ(opInfo(Opcode::ADD).group, OpGroup::kArith);
  EXPECT_EQ(opInfo(Opcode::XNOR).group, OpGroup::kLogic);
  EXPECT_EQ(opInfo(Opcode::ASR).group, OpGroup::kShift);
  EXPECT_EQ(opInfo(Opcode::LE_U).group, OpGroup::kComp);
  EXPECT_EQ(opInfo(Opcode::PRED_GE_U).group, OpGroup::kPred);
  EXPECT_EQ(opInfo(Opcode::MUL_U).group, OpGroup::kMul);
  EXPECT_EQ(opInfo(Opcode::BRL).group, OpGroup::kBranch);
  EXPECT_EQ(opInfo(Opcode::LD_UC2).group, OpGroup::kLdmem);
  EXPECT_EQ(opInfo(Opcode::ST_C2).group, OpGroup::kStmem);
  EXPECT_EQ(opInfo(Opcode::CGA).group, OpGroup::kControl);
  EXPECT_EQ(opInfo(Opcode::C4SHUF).group, OpGroup::kSimd1);
  EXPECT_EQ(opInfo(Opcode::D4PROD).group, OpGroup::kSimd2);
  EXPECT_EQ(opInfo(Opcode::DIV_U).group, OpGroup::kDiv);
}

TEST(OpInfo, Classifiers) {
  EXPECT_TRUE(isLoad(Opcode::LD_C));
  EXPECT_FALSE(isLoad(Opcode::ST_C));
  EXPECT_TRUE(isStore(Opcode::ST_IH));
  EXPECT_TRUE(isMem(Opcode::LD_IH));
  EXPECT_TRUE(isBranch(Opcode::JMPL));
  EXPECT_TRUE(isPredDef(Opcode::PRED_SET));
  EXPECT_TRUE(isControl(Opcode::HALT));
  EXPECT_TRUE(isSimd(Opcode::C4MIX));
  EXPECT_FALSE(isSimd(Opcode::MUL));
  EXPECT_TRUE(writesDataReg(Opcode::ADD));
  EXPECT_FALSE(writesDataReg(Opcode::ST_I));
  EXPECT_TRUE(writesDataReg(Opcode::JMPL)) << "link register";
  EXPECT_FALSE(writesDataReg(Opcode::BR));
  EXPECT_FALSE(isPipelined(Opcode::DIV));
  EXPECT_TRUE(isPipelined(Opcode::D4PROD));
}

TEST(OpInfo, GopsAccounting) {
  EXPECT_EQ(ops16PerInstr(Opcode::C4ADD), 4);
  EXPECT_EQ(ops16PerInstr(Opcode::D4PROD), 4);
  EXPECT_EQ(ops16PerInstr(Opcode::ADD), 1);
  EXPECT_EQ(ops16PerInstr(Opcode::DIV), 1);
}

TEST(OpInfo, EveryOpcodeHasMetadata) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    const OpInfo& info = opInfo(static_cast<Opcode>(i));
    EXPECT_FALSE(info.name.empty());
    EXPECT_GE(info.latency, 1);
    EXPECT_NE(info.fuMask, 0);
  }
}

TEST(OpInfo, GroupNames) {
  EXPECT_EQ(groupName(OpGroup::kArith), "Arith");
  EXPECT_EQ(groupName(OpGroup::kSimd2), "SIMD2");
  EXPECT_EQ(groupName(OpGroup::kDiv), "Div");
}

}  // namespace
}  // namespace adres
