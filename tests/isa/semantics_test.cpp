// Closed-form checks of every compute opcode of Table 1.
#include "isa/semantics.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace adres {
namespace {

TEST(Scalar, ArithWrapsAt32Bits) {
  EXPECT_EQ(evalOp(Opcode::ADD, 0x7FFFFFFF, 1, 0), 0x80000000ull);
  EXPECT_EQ(evalOp(Opcode::SUB, 0, 1, 0), 0xFFFFFFFFull);
  EXPECT_EQ(evalOp(Opcode::ADD_U, 0xFFFFFFFF, 2, 0), 1ull);
}

TEST(Scalar, HighHalfClearedByBasicOps) {
  // Basic-group ops define only the 32 LSBs (paper §2.B).
  EXPECT_EQ(evalOp(Opcode::ADD, 0xAAAA0000'00000001ull, 1, 0), 2ull);
  EXPECT_EQ(evalOp(Opcode::OR, 0xFFFF0000'F0F0F0F0ull, 0x0F0F0F0Full, 0),
            0xFFFFFFFFull);
}

TEST(Scalar, MovKeepsAll64Bits) {
  EXPECT_EQ(evalOp(Opcode::MOV, 0x123456789ABCDEF0ull, 0, 0),
            0x123456789ABCDEF0ull);
}

TEST(Scalar, MoviPair) {
  // li 0x00ABC123 == MOVI 0x123 ; MOVIH 0xABC merges around the low 12 bits.
  const Word lo = evalOp(Opcode::MOVI, 0, 0, 0x123);
  EXPECT_EQ(lo, 0x123ull);
  EXPECT_EQ(evalOp(Opcode::MOVIH, lo, 0, 0xABC), 0x00ABC123ull);
  // Sign extension of MOVI.
  EXPECT_EQ(evalOp(Opcode::MOVI, 0, 0, -1), 0xFFFFFFFFull);
}

TEST(Scalar, LogicOps) {
  const Word a = 0b1100, b = 0b1010;
  EXPECT_EQ(evalOp(Opcode::AND, a, b, 0), 0b1000u);
  EXPECT_EQ(evalOp(Opcode::OR, a, b, 0), 0b1110u);
  EXPECT_EQ(evalOp(Opcode::XOR, a, b, 0), 0b0110u);
  EXPECT_EQ(lo32u(evalOp(Opcode::NAND, a, b, 0)), ~0b1000u);
  EXPECT_EQ(lo32u(evalOp(Opcode::NOR, a, b, 0)), ~0b1110u);
  EXPECT_EQ(lo32u(evalOp(Opcode::XNOR, a, b, 0)), ~0b0110u);
}

TEST(Scalar, Shifts) {
  EXPECT_EQ(evalOp(Opcode::LSL, 1, 31, 0), 0x80000000ull);
  EXPECT_EQ(evalOp(Opcode::LSR, 0x80000000ull, 31, 0), 1ull);
  EXPECT_EQ(evalOp(Opcode::ASR, 0x80000000ull, 31, 0), 0xFFFFFFFFull);
  // Amount is mod 32.
  EXPECT_EQ(evalOp(Opcode::LSL, 1, 33, 0), 2ull);
}

TEST(Scalar, SignedVsUnsignedCompares) {
  const Word minus1 = 0xFFFFFFFFull;
  EXPECT_EQ(evalOp(Opcode::LT, minus1, 1, 0), 1u);
  EXPECT_EQ(evalOp(Opcode::LT_U, minus1, 1, 0), 0u);
  EXPECT_EQ(evalOp(Opcode::GT, minus1, 1, 0), 0u);
  EXPECT_EQ(evalOp(Opcode::GT_U, minus1, 1, 0), 1u);
  EXPECT_EQ(evalOp(Opcode::GE, 5, 5, 0), 1u);
  EXPECT_EQ(evalOp(Opcode::LE, 5, 5, 0), 1u);
  EXPECT_EQ(evalOp(Opcode::EQ, 5, 5, 0), 1u);
  EXPECT_EQ(evalOp(Opcode::NE, 5, 5, 0), 0u);
}

TEST(Scalar, PredOpsMirrorCompares) {
  EXPECT_EQ(evalOp(Opcode::PRED_SET, 0, 0, 0), 1u);
  EXPECT_EQ(evalOp(Opcode::PRED_CLEAR, 0, 0, 0), 0u);
  for (i32 a : {-5, 0, 5}) {
    for (i32 b : {-5, 0, 5}) {
      const Word wa = fromScalar(a), wb = fromScalar(b);
      EXPECT_EQ(evalOp(Opcode::PRED_LT, wa, wb, 0), a < b ? 1u : 0u);
      EXPECT_EQ(evalOp(Opcode::PRED_GE, wa, wb, 0), a >= b ? 1u : 0u);
      EXPECT_EQ(evalOp(Opcode::PRED_EQ, wa, wb, 0), a == b ? 1u : 0u);
    }
  }
}

TEST(Scalar, MulLow32) {
  EXPECT_EQ(evalOp(Opcode::MUL, 0x10000, 0x10000, 0), 0ull);
  EXPECT_EQ(evalOp(Opcode::MUL, fromScalar(i32{-3}), 7, 0),
            fromScalar(i32{-21}));
}

TEST(Scalar, Div24Bit) {
  EXPECT_EQ(evalOp(Opcode::DIV, fromScalar(100), fromScalar(7), 0),
            fromScalar(14) & 0xFFFFFF);
  // Operands are taken from the 24 LSBs, sign-extended.
  EXPECT_EQ(lo32(evalOp(Opcode::DIV, 0x00FFFFFFull /* -1 in 24 bits */,
                        fromScalar(1), 0)) & 0xFFFFFF,
            0xFFFFFF);
  // Div by zero yields 0 (and the core raises the exception flag).
  EXPECT_EQ(evalOp(Opcode::DIV, fromScalar(5), fromScalar(0), 0), 0u);
  EXPECT_EQ(evalOp(Opcode::DIV_U, fromScalar(100), fromScalar(3), 0), 33u);
}

// --- SIMD ---

TEST(Simd, C4AddSubSaturate) {
  const Word a = packLanes(30000, -30000, 5, -5);
  const Word b = packLanes(5000, -5000, 1, 1);
  EXPECT_EQ(evalOp(Opcode::C4ADD, a, b, 0), packLanes(32767, -32768, 6, -4));
  EXPECT_EQ(evalOp(Opcode::C4SUB, a, b, 0), packLanes(25000, -25000, 4, -6));
}

TEST(Simd, Shifts) {
  const Word a = packLanes(1, -4, 256, -1);
  EXPECT_EQ(evalOp(Opcode::C4SHIFTL, a, 2, 0), packLanes(4, -16, 1024, -4));
  EXPECT_EQ(evalOp(Opcode::C4SHIFTR, a, 1, 0), packLanes(0, -2, 128, -1));
}

TEST(Simd, PairwiseAddSub) {
  const Word a = packLanes(10, 3, -7, 2);
  EXPECT_EQ(evalOp(Opcode::C4PADD, a, 0, 0), packLanes(13, 13, -5, -5));
  EXPECT_EQ(evalOp(Opcode::C4PSUB, a, 0, 0), packLanes(7, 7, -9, -9));
}

TEST(Simd, MixAndShuf) {
  const Word a = packLanes(1, 2, 3, 4);
  const Word b = packLanes(5, 6, 7, 8);
  EXPECT_EQ(evalOp(Opcode::C4MIX, a, b, 0), packLanes(1, 6, 3, 8));
  EXPECT_EQ(evalOp(Opcode::C4HILO, a, b, 0), packLanes(1, 2, 7, 8));
  // Shuffle control 0b01001110 -> lanes [2,3,0,1]: pair swap.
  EXPECT_EQ(evalOp(Opcode::C4SHUF, a, 0, 0b01001110), packLanes(3, 4, 1, 2));
  // Broadcast lane 0.
  EXPECT_EQ(evalOp(Opcode::C4SHUF, a, 0, 0), packLanes(1, 1, 1, 1));
}

TEST(Simd, MaxMinAbsNeg) {
  const Word a = packLanes(5, -5, -32768, 7);
  const Word b = packLanes(3, -3, 0, 9);
  EXPECT_EQ(evalOp(Opcode::C4MAX, a, b, 0), packLanes(5, -3, 0, 9));
  EXPECT_EQ(evalOp(Opcode::C4MIN, a, b, 0), packLanes(3, -5, -32768, 7));
  EXPECT_EQ(evalOp(Opcode::C4ABS, a, 0, 0), packLanes(5, 5, 32767, 7));
  EXPECT_EQ(evalOp(Opcode::C4NEG, a, 0, 0), packLanes(-5, 5, 32767, -7));
}

TEST(Simd, D4ProdIsLanewiseQ15) {
  const Word a = packLanes(16384, -16384, 32767, 100);
  const Word b = packLanes(16384, 16384, -32768, 200);
  const Word p = evalOp(Opcode::D4PROD, a, b, 0);
  EXPECT_EQ(lane(p, 0), 8192);
  EXPECT_EQ(lane(p, 1), -8192);
  EXPECT_EQ(lane(p, 2), mulQ15(32767, -32768));
  EXPECT_EQ(lane(p, 3), mulQ15(100, 200));
}

TEST(Simd, C4ProdCrossesPairs) {
  const Word a = packLanes(100, 200, 300, 400);
  const Word b = packLanes(1000, 2000, 3000, 4000);
  const Word p = evalOp(Opcode::C4PROD, a, b, 0);
  EXPECT_EQ(lane(p, 0), mulQ15(100, 2000));
  EXPECT_EQ(lane(p, 1), mulQ15(200, 1000));
  EXPECT_EQ(lane(p, 2), mulQ15(300, 4000));
  EXPECT_EQ(lane(p, 3), mulQ15(400, 3000));
}

// The complex-multiply recipe the kernels use: two cint16 per word.
TEST(Simd, ComplexMultiplyRecipe) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const cint16 x0{static_cast<i16>(rng.next()), static_cast<i16>(rng.next())};
    const cint16 x1{static_cast<i16>(rng.next()), static_cast<i16>(rng.next())};
    const cint16 y0{static_cast<i16>(rng.next()), static_cast<i16>(rng.next())};
    const cint16 y1{static_cast<i16>(rng.next()), static_cast<i16>(rng.next())};
    const Word x = packC2(x0, x1), y = packC2(y0, y1);
    const Word d = evalOp(Opcode::D4PROD, x, y, 0);  // [rr, ii, ...]
    const Word c = evalOp(Opcode::C4PROD, x, y, 0);  // [ri, ir, ...]
    const Word re = evalOp(Opcode::C4PSUB, d, 0, 0); // rr-ii duplicated
    const Word im = evalOp(Opcode::C4PADD, c, 0, 0); // ri+ir duplicated
    const Word z = evalOp(Opcode::C4MIX, re, im, 0); // [re0, im0, re1, im1]
    // Compare against the cint16 golden product (identical Q15 recipe).
    EXPECT_EQ(unpackC(z, 0), x0 * y0);
    EXPECT_EQ(unpackC(z, 1), x1 * y1);
  }
}

TEST(Loads, ExtensionAndMerge) {
  EXPECT_EQ(applyLoadResult(Opcode::LD_UC, 0, 0xFF), 0xFFull);
  EXPECT_EQ(applyLoadResult(Opcode::LD_C, 0, 0xFF), 0xFFFFFFFFull);
  EXPECT_EQ(applyLoadResult(Opcode::LD_UC2, 0, 0x8000), 0x8000ull);
  EXPECT_EQ(applyLoadResult(Opcode::LD_C2, 0, 0x8000), 0xFFFF8000ull);
  EXPECT_EQ(applyLoadResult(Opcode::LD_I, 0xAAAA0000'11111111ull, 0x1234),
            0x1234ull);
  EXPECT_EQ(applyLoadResult(Opcode::LD_IH, 0x11111111ull, 0xDEAD),
            0x0000DEAD'11111111ull);
}

TEST(Stores, DataSelection) {
  const Word v = 0xCAFEBABE'12345678ull;
  EXPECT_EQ(storeData(Opcode::ST_C, v), 0x78u);
  EXPECT_EQ(storeData(Opcode::ST_C2, v), 0x5678u);
  EXPECT_EQ(storeData(Opcode::ST_I, v), 0x12345678u);
  EXPECT_EQ(storeData(Opcode::ST_IH, v), 0xCAFEBABEu);
}

TEST(Mem, AccessSizesAndScales) {
  EXPECT_EQ(memAccessBytes(Opcode::LD_UC), 1);
  EXPECT_EQ(memAccessBytes(Opcode::LD_C2), 2);
  EXPECT_EQ(memAccessBytes(Opcode::ST_I), 4);
  EXPECT_EQ(memImmScale(Opcode::ST_C), 0);
  EXPECT_EQ(memImmScale(Opcode::LD_C2), 1);
  EXPECT_EQ(memImmScale(Opcode::LD_I), 2);
}

TEST(EvalOp, RejectsPipelineOps) {
  EXPECT_THROW(evalOp(Opcode::JMP, 0, 0, 0), SimError);
  EXPECT_THROW(evalOp(Opcode::LD_I, 0, 0, 0), SimError);
  EXPECT_THROW(evalOp(Opcode::CGA, 0, 0, 0), SimError);
}

}  // namespace
}  // namespace adres
