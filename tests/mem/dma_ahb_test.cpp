// DMA engine, configuration memory, and the AHB slave port.
#include <gtest/gtest.h>

#include "bus/ahb.hpp"
#include "core/processor.hpp"
#include "mem/config_mem.hpp"
#include "mem/dma.hpp"
#include "mem/scratchpad.hpp"

namespace adres {
namespace {

TEST(ConfigMem, ByteWordAccess) {
  ConfigMemory cm;
  cm.write32(0x10, 0x11223344);
  EXPECT_EQ(cm.read32(0x10), 0x11223344u);
  EXPECT_EQ(cm.read8(0x10), 0x44u);
  EXPECT_THROW(cm.read8(kConfigMemBytes), SimError);
}

TEST(ConfigMem, LoadAndReadBytes) {
  ConfigMemory cm;
  cm.loadBytes(4, {1, 2, 3, 4});
  EXPECT_EQ(cm.readBytes(4, 4), (std::vector<u8>{1, 2, 3, 4}));
  EXPECT_EQ(cm.stats().dmaBytes, 4u);
}

TEST(Dma, CostModel) {
  Scratchpad l1;
  ConfigMemory cm;
  DmaEngine dma(l1, cm);
  const u64 c = dma.toL1(0, std::vector<u8>(64, 0xAB));
  EXPECT_EQ(c, static_cast<u64>(DmaEngine::kSetupCoreCycles +
                                16 * DmaEngine::kCoreCyclesPerWord));
  EXPECT_EQ(l1.read32(60), 0xABABABABu);
  EXPECT_EQ(dma.stats().wordsMoved, 16u);
}

TEST(Dma, RoundTripThroughL1) {
  Scratchpad l1;
  ConfigMemory cm;
  DmaEngine dma(l1, cm);
  std::vector<u8> in{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80};
  dma.toL1(0x40, in);
  std::vector<u8> out;
  dma.fromL1(0x40, 8, out);
  EXPECT_EQ(out, in);
}

TEST(Dma, WholeWordsOnly) {
  Scratchpad l1;
  ConfigMemory cm;
  DmaEngine dma(l1, cm);
  EXPECT_THROW(dma.toL1(0, std::vector<u8>(3)), SimError);
}

TEST(Ahb, RegionDecodeAndOverlapRejection) {
  AhbSlave bus;
  u32 reg = 0;
  bus.addRegion(
      "a", 0x0, 0x100, [&](u32 off) { return off + 1; },
      [&](u32, u32 v) { reg = v; });
  EXPECT_THROW(bus.addRegion("b", 0x80, 0x100, nullptr, nullptr), SimError);
  EXPECT_EQ(bus.read32(0x10), 0x11u);
  bus.write32(0x0, 99);
  EXPECT_EQ(reg, 99u);
  EXPECT_THROW(bus.read32(0x200), SimError) << "decode error";
  EXPECT_THROW(bus.read32(0x2), SimError) << "unaligned";
}

TEST(Ahb, ProcessorMemoryMap) {
  Processor p;
  AhbSlave bus;
  p.attachBus(bus);

  // L1 visible through the slave port.
  p.l1().write32(0x123 * 4, 0xFEEDFACE);
  EXPECT_EQ(bus.read32(mmap::kL1Base + 0x123 * 4), 0xFEEDFACEu);
  bus.write32(mmap::kL1Base + 0x40, 0x11112222);
  EXPECT_EQ(p.l1().read32(0x40), 0x11112222u);

  // Config memory region.
  bus.write32(mmap::kConfigBase + 8, 0xA5A5A5A5);
  EXPECT_EQ(p.configMem().read32(8), 0xA5A5A5A5u);

  // Special registers: status reads as running, cycle counter visible.
  EXPECT_EQ(bus.read32(mmap::kSpecialBase + sreg::kStatus), 0u);
  EXPECT_EQ(bus.read32(mmap::kSpecialBase + sreg::kCycleLo), 0u);

  // Debug data interface: indirect L1 window.
  bus.write32(mmap::kSpecialBase + sreg::kDebugAddr, 0x40);
  EXPECT_EQ(bus.read32(mmap::kSpecialBase + sreg::kDebugData), 0x11112222u);
  bus.write32(mmap::kSpecialBase + sreg::kDebugData, 0x33334444);
  EXPECT_EQ(p.l1().read32(0x40), 0x33334444u);

  // AHB priority setting round-trips.
  bus.write32(mmap::kSpecialBase + sreg::kAhbPriority, 1);
  EXPECT_EQ(bus.read32(mmap::kSpecialBase + sreg::kAhbPriority), 1u);

  // Writes to read-only registers rejected.
  EXPECT_THROW(bus.write32(mmap::kSpecialBase + sreg::kStatus, 1), SimError);
}

TEST(Ahb, BurstCycleAccounting) {
  AhbSlave bus;
  bus.addRegion(
      "a", 0, 0x100, [](u32) { return 0u; }, [](u32, u32) {});
  (void)bus.read32(0);
  EXPECT_EQ(bus.stats().busCycles, 2u) << "address + data phase";
  (void)bus.readBurst(0, 4);
  EXPECT_EQ(bus.stats().busCycles, 2u + 5u) << "INCR burst pipelines addresses";
}

}  // namespace
}  // namespace adres
