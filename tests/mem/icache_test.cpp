// Direct-mapped I$: cold misses, hits, conflict eviction.
#include "mem/icache.hpp"

#include <gtest/gtest.h>

namespace adres {
namespace {

TEST(ICache, ColdMissThenHit) {
  ICache ic;
  EXPECT_EQ(ic.fetch(0), kICacheMissPenalty);
  EXPECT_EQ(ic.fetch(0), 0);
  EXPECT_EQ(ic.fetch(4), 0) << "same 16-byte line";
  EXPECT_EQ(ic.fetch(16), kICacheMissPenalty) << "next line";
  EXPECT_EQ(ic.stats().accesses, 4u);
  EXPECT_EQ(ic.stats().misses, 2u);
}

TEST(ICache, DirectMappedConflict) {
  ICache ic;
  // Two addresses 32 KiB apart map to the same line and evict each other.
  EXPECT_EQ(ic.fetch(0), kICacheMissPenalty);
  EXPECT_EQ(ic.fetch(kICacheBytes), kICacheMissPenalty);
  EXPECT_EQ(ic.fetch(0), kICacheMissPenalty) << "evicted";
  EXPECT_EQ(ic.fetch(kICacheBytes), kICacheMissPenalty);
}

TEST(ICache, CapacityHoldsWholeCache) {
  ICache ic;
  for (u32 a = 0; a < kICacheBytes; a += kICacheLineBytes)
    EXPECT_EQ(ic.fetch(a), kICacheMissPenalty);
  for (u32 a = 0; a < kICacheBytes; a += kICacheLineBytes)
    EXPECT_EQ(ic.fetch(a), 0) << "whole cache resident";
}

TEST(ICache, ResetColdsTheCache) {
  ICache ic;
  (void)ic.fetch(0);
  EXPECT_EQ(ic.fetch(0), 0);
  ic.reset();
  EXPECT_EQ(ic.fetch(0), kICacheMissPenalty);
  EXPECT_EQ(ic.stats().accesses, 1u) << "stats also reset";
}

}  // namespace
}  // namespace adres
