// 4-bank L1: functional access, interleaving, and contention timing.
#include "mem/scratchpad.hpp"

#include <map>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace adres {
namespace {

TEST(Scratchpad, ByteHalfWordAccess) {
  Scratchpad l1;
  l1.write32(0x100, 0xDEADBEEF);
  EXPECT_EQ(l1.read32(0x100), 0xDEADBEEFu);
  EXPECT_EQ(l1.read16(0x100), 0xBEEFu);
  EXPECT_EQ(l1.read16(0x102), 0xDEADu);
  EXPECT_EQ(l1.read8(0x103), 0xDEu);
  l1.write16(0x102, 0xCAFE);
  EXPECT_EQ(l1.read32(0x100), 0xCAFEBEEFu);
  l1.write8(0x100, 0x42);
  EXPECT_EQ(l1.read32(0x100), 0xCAFEBE42u);
}

TEST(Scratchpad, WordInterleavedBanks) {
  EXPECT_EQ(Scratchpad::bankOf(0x0), 0);
  EXPECT_EQ(Scratchpad::bankOf(0x4), 1);
  EXPECT_EQ(Scratchpad::bankOf(0x8), 2);
  EXPECT_EQ(Scratchpad::bankOf(0xC), 3);
  EXPECT_EQ(Scratchpad::bankOf(0x10), 0);
  EXPECT_EQ(Scratchpad::bankOf(0x7), 1) << "bytes within a word share a bank";
}

TEST(Scratchpad, OutOfRangeAndMisalignedThrow) {
  Scratchpad l1;
  EXPECT_THROW(l1.read32(kL1Bytes), SimError);
  EXPECT_THROW(l1.write32(kL1Bytes - 2, 0), SimError);
  EXPECT_THROW(l1.read32(0x101), SimError);
  EXPECT_THROW(l1.read16(0x101), SimError);
  EXPECT_NO_THROW(l1.read8(0x101));
}

TEST(Scratchpad, LoadBytesBulk) {
  Scratchpad l1;
  l1.loadBytes(8, {0x11, 0x22, 0x33, 0x44});
  EXPECT_EQ(l1.read32(8), 0x44332211u);
}

TEST(Arbiter, NoConflictAcrossBanks) {
  Scratchpad l1;
  auto& arb = l1.arbiter();
  // Four same-cycle requests to four different banks: all granted at once.
  EXPECT_EQ(arb.request(10, 0x0, l1.mutableStats()), 0);
  EXPECT_EQ(arb.request(10, 0x4, l1.mutableStats()), 0);
  EXPECT_EQ(arb.request(10, 0x8, l1.mutableStats()), 0);
  EXPECT_EQ(arb.request(10, 0xC, l1.mutableStats()), 0);
  EXPECT_EQ(l1.stats().conflicts, 0u);
}

TEST(Arbiter, SameBankConflictCostsTwoCycles) {
  // The paper's 5/7 load-latency split: a queued access adds 2 cycles.
  Scratchpad l1;
  auto& arb = l1.arbiter();
  EXPECT_EQ(arb.request(10, 0x0, l1.mutableStats()), 0);
  EXPECT_EQ(arb.request(10, 0x10, l1.mutableStats()), 2) << "same bank, queued";
  EXPECT_EQ(arb.request(10, 0x20, l1.mutableStats()), 4) << "third in queue";
  EXPECT_EQ(l1.stats().conflicts, 2u);
  EXPECT_EQ(l1.stats().conflictCycles, 3u);
}

TEST(Arbiter, PortFreesAfterOneCycle) {
  Scratchpad l1;
  auto& arb = l1.arbiter();
  EXPECT_EQ(arb.request(10, 0x0, l1.mutableStats()), 0);
  EXPECT_EQ(arb.request(11, 0x0, l1.mutableStats()), 0)
      << "next cycle, no conflict";
}

TEST(Arbiter, ResetClearsBookings) {
  Scratchpad l1;
  auto& arb = l1.arbiter();
  (void)arb.request(10, 0x0, l1.mutableStats());
  arb.reset();
  EXPECT_EQ(arb.request(0, 0x0, l1.mutableStats()), 0);
}

TEST(Scratchpad, StatsCountReadsWrites) {
  Scratchpad l1;
  l1.resetStats();
  l1.write32(0, 1);
  (void)l1.read32(0);
  (void)l1.read16(0);
  EXPECT_EQ(l1.stats().writes, 1u);
  EXPECT_EQ(l1.stats().reads, 2u);
}

TEST(Scratchpad, RandomizedReadBackProperty) {
  Scratchpad l1;
  Rng rng(21);
  std::vector<std::pair<u32, u32>> written;
  for (int i = 0; i < 500; ++i) {
    const u32 addr = static_cast<u32>(rng.below(kL1Bytes / 4)) * 4;
    const u32 v = static_cast<u32>(rng.next());
    l1.write32(addr, v);
    written.emplace_back(addr, v);
  }
  // Last write to an address wins.
  std::map<u32, u32> expect;
  for (const auto& [a, v] : written) expect[a] = v;
  for (const auto& [a, v] : expect) EXPECT_EQ(l1.read32(a), v);
}

}  // namespace
}  // namespace adres
