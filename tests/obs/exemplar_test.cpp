// ExemplarStore: quantile arming, capture/reject decisions, the bounded
// evict-fastest-of-the-slow policy (including on-disk file deletion), and
// the atomically-written adres.exemplar.v1 file format.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_min.hpp"
#include "obs/exemplar.hpp"
#include "obs/histogram.hpp"
#include "trace/span.hpp"

namespace adres::obs {
namespace {

using json::JsonParser;
using json::JsonValue;

constexpr const char* kDir = "exemplar_test_store";

/// A latency histogram (nanoseconds) holding `values` microsecond samples.
HistogramSnapshot latencyHist(const std::vector<double>& valuesUs) {
  LogLinearHistogram h;
  for (const double v : valuesUs) h.record(static_cast<u64>(v * 1000.0));
  return h.snapshot();
}

trace::PacketSpans spansFor(u64 jobId) {
  return trace::buildPacketSpans(jobId, /*tag=*/0, /*worker=*/0,
                                 /*enqueueUs=*/0, /*dispatchUs=*/1,
                                 /*decodeStartUs=*/2, /*decodeEndUs=*/10,
                                 /*decodeCycles=*/100, {{0, 0, 100, 50}},
                                 {"sync"});
}

struct Exemplars : ::testing::Test {
  void SetUp() override { std::filesystem::remove_all(kDir); }
  void TearDown() override { std::filesystem::remove_all(kDir); }

  ExemplarConfig config(std::size_t maxExemplars = 8, u64 minCount = 2) {
    ExemplarConfig cfg;
    cfg.enabled = true;
    cfg.dir = kDir;
    cfg.quantile = 0.5;
    cfg.maxExemplars = maxExemplars;
    cfg.minCount = minCount;
    return cfg;
  }

  bool capture(ExemplarStore& store, u64 jobId, double latencyUs,
               const HistogramSnapshot& hist) {
    const std::vector<TraceEvent> ring = {
        {10, 5, TraceEventKind::kKernel, 0, 1, 64},
        {20, 0, TraceEventKind::kModeSwitch, 0, 1, 0}};
    return store.maybeCapture(spansFor(jobId), ring, /*ringAccepted=*/2,
                              /*ringDropped=*/0, /*ringCapacity=*/16,
                              latencyUs, /*queueWaitUs=*/1.0,
                              /*simCycles=*/100, hist);
  }
};

TEST_F(Exemplars, ThresholdIsInfiniteUntilArmedThenQuantileBased) {
  ExemplarStore store(config(8, /*minCount=*/4));
  EXPECT_TRUE(std::isinf(store.thresholdUs(latencyHist({}))));
  EXPECT_TRUE(std::isinf(store.thresholdUs(latencyHist({50, 60, 70}))))
      << "below minCount";
  const double t = store.thresholdUs(latencyHist({50, 60, 70, 80}));
  EXPECT_TRUE(std::isfinite(t));
  // p50 of {50,60,70,80} µs, within one log-linear bucket width.
  EXPECT_NEAR(t, 60.0, 60.0 / 16.0);

  // An unarmed store captures nothing, no matter how slow the packet.
  EXPECT_FALSE(capture(store, 1, 1e9, latencyHist({50})));
  EXPECT_EQ(store.captured(), 0u);
}

TEST_F(Exemplars, CapturesAboveThresholdAndWritesSchemaFile) {
  ExemplarStore store(config());
  const HistogramSnapshot hist = latencyHist({50, 60, 70, 80});
  EXPECT_FALSE(capture(store, 1, 10.0, hist)) << "fast packet rejected";
  ASSERT_TRUE(capture(store, 2, 90.0, hist));
  EXPECT_EQ(store.captured(), 1u);
  EXPECT_EQ(store.evicted(), 0u);

  const std::vector<ExemplarRecord> recs = store.records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].jobId, 2u);
  EXPECT_EQ(recs[0].traceId, trace::packetTraceId(2, 0));
  EXPECT_DOUBLE_EQ(recs[0].latencyUs, 90.0);
  EXPECT_EQ(recs[0].simCycles, 100u);

  // The persisted file is final (no .tmp residue) and schema-complete.
  ASSERT_TRUE(std::filesystem::exists(recs[0].path));
  EXPECT_FALSE(std::filesystem::exists(recs[0].path + ".tmp"));
  std::stringstream body;
  body << std::ifstream(recs[0].path).rdbuf();
  const JsonValue root = JsonParser(body.str()).parse();
  EXPECT_EQ(root.at("schema").str, "adres.exemplar.v1");
  EXPECT_EQ(root.at("trace_id").str, trace::traceIdHex(recs[0].traceId));
  EXPECT_EQ(root.at("job_id").number, 2.0);
  EXPECT_EQ(root.at("latency_us").number, 90.0);
  ASSERT_EQ(root.at("spans").array.size(), 5u) << "4 phases + 1 region";
  EXPECT_EQ(root.at("spans").array[0].at("kind").str, "packet");
  EXPECT_EQ(root.at("spans").array[4].at("name").str, "sync");
  EXPECT_EQ(root.at("ring").at("capacity").number, 16.0);
  ASSERT_EQ(root.at("ring").at("events").array.size(), 2u);
  EXPECT_EQ(root.at("ring").at("events").array[0].at("kind").str, "kernel");
}

TEST_F(Exemplars, BoundedStoreEvictsFastestOfTheSlowWithItsFile) {
  ExemplarStore store(config(/*maxExemplars=*/2));
  const HistogramSnapshot hist = latencyHist({10, 20});  // p50 arms low
  ASSERT_TRUE(capture(store, 1, 100.0, hist));
  ASSERT_TRUE(capture(store, 2, 300.0, hist));
  const std::string fastestPath = store.records().back().path;
  EXPECT_EQ(store.records().back().jobId, 1u);

  // Full + slower than the fastest retained: evicts job 1 and its file.
  ASSERT_TRUE(capture(store, 3, 200.0, hist));
  EXPECT_EQ(store.captured(), 3u);
  EXPECT_EQ(store.evicted(), 1u);
  const std::vector<ExemplarRecord> recs = store.records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].jobId, 2u) << "slowest first";
  EXPECT_EQ(recs[1].jobId, 3u);
  EXPECT_FALSE(std::filesystem::exists(fastestPath))
      << "evicted exemplar file deleted";
  for (const ExemplarRecord& r : recs)
    EXPECT_TRUE(std::filesystem::exists(r.path));

  // Full + faster than everything retained: rejected, store unchanged.
  EXPECT_FALSE(capture(store, 4, 150.0, hist));
  EXPECT_EQ(store.captured(), 3u);
  EXPECT_EQ(store.records().size(), 2u);
}

}  // namespace
}  // namespace adres::obs
