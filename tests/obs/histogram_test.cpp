// Log-linear histogram: bucket-layout invariants over the full u64 range,
// exactness for small values, the one-bucket-width quantile accuracy bound
// vs the sort-based percentile the benches used to compute, snapshot
// merging, and concurrent lock-free recording (TSan covers this test).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/histogram.hpp"

namespace adres::obs {
namespace {

using H = LogLinearHistogram;

/// The sort-based percentile bench_farm used to compute: the sample at rank
/// floor(q * (n-1)) of the sorted vector.
u64 sortedPercentile(std::vector<u64> v, double q) {
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(q * (static_cast<double>(v.size()) - 1))];
}

TEST(Histogram, BucketLayoutCoversU64InOrder) {
  // Index is monotone, every value lands inside its bucket's [lo, hi).
  const u64 probes[] = {0,   1,    15,    16,        17,        255,
                       256, 4095, 70000, 1ull << 40, (1ull << 63) + 5, ~0ull};
  std::size_t prev = 0;
  for (const u64 v : probes) {
    const std::size_t idx = H::bucketIndex(v);
    ASSERT_LT(idx, H::kNumBuckets) << v;
    EXPECT_GE(idx, prev) << "bucketIndex must preserve order at " << v;
    prev = idx;
    EXPECT_LE(H::bucketLo(idx), v) << v;
    if (v == ~0ull) {
      EXPECT_EQ(H::bucketHi(idx), ~0ull) << "top bucket saturates inclusively";
    } else {
      EXPECT_GT(H::bucketHi(idx), v) << v;
    }
  }
  // Values below 2^kSubBits each get their own exact bucket.
  for (u64 v = 0; v < H::kSubBuckets; ++v) {
    EXPECT_EQ(H::bucketIndex(v), v);
    EXPECT_EQ(H::bucketLo(v), v);
    EXPECT_EQ(H::bucketHi(v), v + 1);
  }
}

TEST(Histogram, RelativeBucketWidthIsBounded) {
  // For values >= 2^kSubBits the bucket width is at most lo / 2^kSubBits,
  // i.e. 6.25% relative error worst case with 4 sub-bits.
  for (const u64 v : {16ull, 100ull, 4097ull, 1ull << 30, 1ull << 50}) {
    const std::size_t idx = H::bucketIndex(v);
    const u64 lo = H::bucketLo(idx), hi = H::bucketHi(idx);
    EXPECT_LE(hi - lo, std::max<u64>(1, lo >> H::kSubBits)) << v;
  }
}

TEST(Histogram, CountSumMinMaxAndExactSmallValues) {
  H h;
  for (const u64 v : {3ull, 3ull, 7ull, 400ull}) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 413u);
  EXPECT_EQ(s.min, 3u);
  EXPECT_EQ(s.max, 400u);
  EXPECT_DOUBLE_EQ(s.mean(), 413.0 / 4.0);
  EXPECT_EQ(s.buckets[H::bucketIndex(3)], 2u);
  EXPECT_EQ(s.buckets[H::bucketIndex(7)], 1u);

  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
}

TEST(Histogram, QuantileWithinOneBucketWidthOfSortBased) {
  // Fixed-seed latency-like distribution spanning several decades; p50/p99
  // from the histogram must land within the width of the bucket holding the
  // exact sorted-sample percentile (the acceptance bound for replacing the
  // sort-based bench code).
  Rng rng(42);
  H h;
  std::vector<u64> samples;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform-ish: a random decade between 2^6 and 2^25, then linear.
    const u64 decade = 6 + rng.next() % 20;
    const u64 v = (1ull << decade) + rng.next() % (1ull << decade);
    samples.push_back(v);
    h.record(v);
  }
  const HistogramSnapshot s = h.snapshot();
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const u64 exact = sortedPercentile(samples, q);
    const std::size_t idx = H::bucketIndex(exact);
    const double width =
        static_cast<double>(H::bucketHi(idx) - H::bucketLo(idx));
    EXPECT_NEAR(s.quantile(q), static_cast<double>(exact), width)
        << "q=" << q;
  }
  // Extremes clamp to the recorded range.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), static_cast<double>(s.min));
  EXPECT_DOUBLE_EQ(s.quantile(1.0), static_cast<double>(s.max));
}

TEST(Histogram, MergedSnapshotEqualsSingleHistogram) {
  H a, b, all;
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const u64 v = rng.next() % 100000;
    (i % 2 ? a : b).record(v);
    all.record(v);
  }
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HistogramSnapshot single = all.snapshot();
  EXPECT_EQ(merged.count, single.count);
  EXPECT_EQ(merged.sum, single.sum);
  EXPECT_EQ(merged.min, single.min);
  EXPECT_EQ(merged.max, single.max);
  EXPECT_EQ(merged.buckets, single.buckets);
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), single.quantile(0.5));
}

TEST(Histogram, ZeroValuesAreExactAndQuantileSafe) {
  // Latency code records 0 for sub-resolution waits; zeros must land in the
  // exact value-0 bucket and every derived statistic must stay finite.
  H h;
  for (int i = 0; i < 100; ++i) h.record(0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.buckets[H::bucketIndex(0)], 100u);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), 0.0) << q;
  }
  // Mixed with a real value, zeros still dominate the median.
  h.record(1ull << 20);
  const HistogramSnapshot s2 = h.snapshot();
  EXPECT_DOUBLE_EQ(s2.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s2.quantile(1.0), static_cast<double>(1ull << 20));
}

TEST(Histogram, OverflowBucketAtTopDecadeSaturates) {
  // The largest representable values — including ~0ull, which sum may wrap
  // on — land in the final (saturating) bucket without losing counts.
  H h;
  const u64 top = ~0ull;
  const u64 nearTop = (1ull << 63) + 123;
  h.record(top);
  h.record(nearTop);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.max, top);
  EXPECT_EQ(s.min, nearTop);
  const std::size_t topIdx = H::bucketIndex(top);
  ASSERT_LT(topIdx, s.buckets.size());
  EXPECT_EQ(H::bucketHi(topIdx), ~0ull) << "top bucket is inclusive";
  EXPECT_GE(s.buckets[topIdx], 1u);
  // Quantiles stay within the recorded range even at the extreme decade.
  EXPECT_GE(s.quantile(0.5), static_cast<double>(s.min));
  EXPECT_LE(s.quantile(1.0), static_cast<double>(s.max));
  u64 bucketTotal = 0;
  for (const u64 b : s.buckets) bucketTotal += b;
  EXPECT_EQ(bucketTotal, 2u);
}

TEST(Histogram, MergeOfDisjointSnapshotsFoldsMinMaxAndRanks) {
  // a holds a low cluster, b a high cluster with no overlapping buckets;
  // the merge must fold min/max across both and rank quantiles globally.
  H a, b;
  for (int i = 0; i < 100; ++i) a.record(10 + static_cast<u64>(i % 3));
  for (int i = 0; i < 100; ++i)
    b.record((1ull << 30) + static_cast<u64>(i % 5) * 1000);
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 200u);
  EXPECT_EQ(merged.min, 10u);
  EXPECT_GE(merged.max, 1ull << 30);
  // Median sits in the low cluster, p99 in the high one.
  EXPECT_LE(merged.quantile(0.49), 13.0);
  EXPECT_GE(merged.quantile(0.99), static_cast<double>(1ull << 30) * 0.9);
  // Merging an empty snapshot is the identity.
  HistogramSnapshot copy = merged;
  copy.merge(HistogramSnapshot{});
  EXPECT_EQ(copy.count, merged.count);
  EXPECT_EQ(copy.min, merged.min);
  EXPECT_EQ(copy.max, merged.max);
  EXPECT_EQ(copy.buckets, merged.buckets);
  // And merging INTO an empty snapshot adopts the other side wholesale.
  HistogramSnapshot fresh;
  fresh.merge(merged);
  EXPECT_EQ(fresh.count, merged.count);
  EXPECT_EQ(fresh.min, merged.min);
  EXPECT_EQ(fresh.max, merged.max);
}

TEST(Histogram, QuantilesOnEmptyHistogramAreZero) {
  const HistogramSnapshot s = H().snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), 0.0) << q;
  }
  // A default-constructed (bucketless) snapshot behaves the same way.
  const HistogramSnapshot none;
  EXPECT_DOUBLE_EQ(none.quantile(0.5), 0.0);
}

TEST(Histogram, CountAboveIsExactForSmallValuesAndBucketBoundedOtherwise) {
  // countAbove feeds the SLO deadline-miss rate: exact for sub-2^kSubBits
  // values (one bucket each) and errs low by at most one bucket's count for
  // larger thresholds (values sharing the threshold's bucket read as <=).
  H h;
  for (u64 v = 1; v <= 10; ++v) h.record(v);  // exact region
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.countAbove(0), 10u);
  EXPECT_EQ(s.countAbove(5), 5u) << "6..10 are strictly above 5";
  EXPECT_EQ(s.countAbove(10), 0u);
  EXPECT_EQ(s.countAbove(~0ull), 0u);

  // Bucketized region: a threshold inside a populated bucket may undercount,
  // but never by more than that single bucket's population, and thresholds
  // on bucket boundaries between clusters are exact.
  H big;
  for (int i = 0; i < 90; ++i) big.record(1000);
  for (int i = 0; i < 10; ++i) big.record(1'000'000);
  const HistogramSnapshot b = big.snapshot();
  EXPECT_EQ(b.countAbove(500'000), 10u)
      << "clusters decades apart separate exactly";
  EXPECT_EQ(b.countAbove(2'000'000), 0u);
  // Threshold inside the low cluster's bucket: its 90 samples count as <=.
  const u64 lowLo = H::bucketLo(H::bucketIndex(1000));
  EXPECT_EQ(b.countAbove(lowLo), 10u) << "errs low, bounded by one bucket";

  // Empty / bucketless snapshots are zero everywhere.
  EXPECT_EQ(H().snapshot().countAbove(0), 0u);
  EXPECT_EQ(HistogramSnapshot{}.countAbove(123), 0u);
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  // Lock-free recording from many threads while a reader snapshots; the
  // final snapshot must account for every record (TSan validates the
  // absence of data races here).
  H h;
  constexpr int kThreads = 4, kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(static_cast<u64>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) h.record(rng.next() % 1000000);
    });
  }
  while (h.count() < kThreads * kPerThread) (void)h.snapshot();
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<u64>(kThreads * kPerThread));
  u64 bucketTotal = 0;
  for (const u64 b : s.buckets) bucketTotal += b;
  EXPECT_EQ(bucketTotal, s.count) << "count is derived from the buckets";
}

}  // namespace
}  // namespace adres::obs
