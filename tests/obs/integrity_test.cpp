// DivergenceSentinel: deterministic sampling math, decode comparison across
// every audited dimension, event bookkeeping and the bundle/event hooks.
#include <gtest/gtest.h>

#include <cmath>

#include "obs/integrity.hpp"

namespace adres::obs {
namespace {

DecodeSummary summary(u64 cycles = 1000, std::size_t bits = 64) {
  DecodeSummary s;
  s.detected = true;
  s.ltfStart = 160;
  s.stop = "halt";
  s.cycles = cycles;
  s.totalOps = 5000;
  s.bits.assign(bits, 0);
  for (std::size_t i = 0; i < bits; i += 3) s.bits[i] = 1;
  RegionProfile rp;
  rp.cycles = cycles;
  rp.ops = 5000;
  s.regions[0] = rp;
  return s;
}

TEST(SentinelSampling, IsDeterministicAndSeedKeyed) {
  SentinelConfig cfg;
  cfg.enabled = true;
  cfg.sampleRate = 0.5;
  DivergenceSentinel a(cfg, {});
  DivergenceSentinel b(cfg, {});
  int sampled = 0;
  for (u64 id = 1; id <= 2000; ++id) {
    EXPECT_EQ(a.shouldSample(id), b.shouldSample(id))
        << "same (id, seed) must decide identically";
    if (a.shouldSample(id)) ++sampled;
  }
  // Hash uniformity: ~50% +- a loose margin.
  EXPECT_GT(sampled, 800);
  EXPECT_LT(sampled, 1200);

  cfg.seed ^= 0xDEADBEEFull;
  DivergenceSentinel c(cfg, {});
  int differs = 0;
  for (u64 id = 1; id <= 2000; ++id)
    if (a.shouldSample(id) != c.shouldSample(id)) ++differs;
  EXPECT_GT(differs, 0) << "a different seed selects a different subset";
}

TEST(SentinelSampling, RateEdgesAreExact) {
  SentinelConfig all;
  all.enabled = true;
  all.sampleRate = 1.0;
  DivergenceSentinel everything(all, {});
  SentinelConfig none;
  none.enabled = true;
  none.sampleRate = 0.0;
  DivergenceSentinel nothing(none, {});
  SentinelConfig off;  // disabled sentinel never samples, whatever the rate
  off.sampleRate = 1.0;
  DivergenceSentinel disabled(off, {});
  for (u64 id = 1; id <= 500; ++id) {
    EXPECT_TRUE(everything.shouldSample(id));
    EXPECT_FALSE(nothing.shouldSample(id));
    EXPECT_FALSE(disabled.shouldSample(id));
  }
}

TEST(SentinelSampling, RateScalesTheSampledFraction) {
  SentinelConfig cfg;
  cfg.enabled = true;
  cfg.sampleRate = 0.01;
  DivergenceSentinel s(cfg, {});
  int sampled = 0;
  for (u64 id = 1; id <= 100000; ++id)
    if (s.shouldSample(id)) ++sampled;
  EXPECT_GT(sampled, 500);
  EXPECT_LT(sampled, 2000) << "1% sampling should audit ~1000/100k packets";
}

TEST(CompareDecodes, IdenticalSummariesMatch) {
  EXPECT_FALSE(compareDecodes(summary(), summary()).has_value());
}

TEST(CompareDecodes, FlagsEachDimensionWithBitPriority) {
  const DecodeSummary base = summary();

  DecodeSummary flipped = base;
  flipped.bits[7] ^= 1;
  auto ev = compareDecodes(base, flipped);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, IntegrityEvent::Kind::kBits);
  EXPECT_TRUE(ev->bitsDiverged);
  EXPECT_EQ(ev->bitErrors, 1u);

  DecodeSummary meta = base;
  meta.ltfStart += 16;
  ev = compareDecodes(base, meta);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, IntegrityEvent::Kind::kResult);
  EXPECT_FALSE(ev->bitsDiverged);

  DecodeSummary slower = base;
  slower.cycles += 100;
  slower.regions[0].cycles += 100;  // keep the partition sizes equal
  ev = compareDecodes(base, slower);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, IntegrityEvent::Kind::kCycles);
  EXPECT_EQ(ev->primaryCycles, base.cycles);
  EXPECT_EQ(ev->shadowCycles, slower.cycles);

  DecodeSummary ops = base;
  ops.totalOps += 1;
  ev = compareDecodes(base, ops);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, IntegrityEvent::Kind::kCounters);
  EXPECT_TRUE(ev->countersDiverged);

  // Bits dominate when several dimensions diverge at once.
  DecodeSummary everything = base;
  everything.bits[0] ^= 1;
  everything.cycles += 5;
  everything.totalOps += 5;
  ev = compareDecodes(base, everything);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, IntegrityEvent::Kind::kBits);
  EXPECT_TRUE(ev->cyclesDiverged);
}

TEST(CompareDecodes, RegionPartitionMismatchIsACounterDivergence) {
  const DecodeSummary base = summary();
  DecodeSummary skewed = base;
  skewed.regions[0].vliwOps += 3;  // same totals, different partition
  const auto ev = compareDecodes(base, skewed);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, IntegrityEvent::Kind::kCounters);
}

TEST(Sentinel, AuditRecordsDivergencesAndCallsHooks) {
  SentinelConfig cfg;
  cfg.enabled = true;
  cfg.sampleRate = 1.0;
  // Shadow decoder: always returns the clean summary.
  DivergenceSentinel sentinel(
      cfg, [](const std::array<std::vector<cint16>, 2>&,
              std::vector<TraceEvent>*) { return summary(); });
  int hookCalls = 0;
  sentinel.setEventHook([&](const IntegrityEvent& ev) {
    ++hookCalls;
    EXPECT_EQ(ev.bundlePath, "bundles/b0.json");
  });
  int bundleCalls = 0;
  sentinel.setBundleFn([&](const IntegrityEvent&,
                           const std::array<std::vector<cint16>, 2>&,
                           const DecodeSummary& primary,
                           const DecodeSummary& shadow,
                           const std::vector<TraceEvent>&) {
    ++bundleCalls;
    EXPECT_NE(primary.bits, shadow.bits);
    return std::string("bundles/b0.json");
  });

  const std::array<std::vector<cint16>, 2> rx{};  // stub decoder ignores it
  // Matching primary: no event.
  EXPECT_FALSE(sentinel.audit(1, 0, 0, 11, rx, summary()).has_value());
  EXPECT_EQ(sentinel.sampled(), 1u);
  EXPECT_EQ(sentinel.divergences(), 0u);
  EXPECT_EQ(bundleCalls, 0);

  // Corrupted primary: event with identity fields + bundle + hook.
  DecodeSummary bad = summary();
  bad.bits[3] ^= 1;
  const auto ev = sentinel.audit(7, 42, 2, 1234, rx, bad);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->jobId, 7u);
  EXPECT_EQ(ev->tag, 42u);
  EXPECT_EQ(ev->worker, 2);
  EXPECT_EQ(ev->traceId, 1234u);
  EXPECT_EQ(ev->shadowTier, "interpreted");
  EXPECT_EQ(ev->bundlePath, "bundles/b0.json");
  EXPECT_EQ(sentinel.sampled(), 2u);
  EXPECT_EQ(sentinel.divergences(), 1u);
  EXPECT_EQ(bundleCalls, 1);
  EXPECT_EQ(hookCalls, 1);
  ASSERT_EQ(sentinel.events().size(), 1u);
  EXPECT_EQ(sentinel.events()[0].kind, IntegrityEvent::Kind::kBits);
}

TEST(Sentinel, EventKindNamesAreStable) {
  EXPECT_STREQ(integrityEventKindName(IntegrityEvent::Kind::kBits), "bits");
  EXPECT_STREQ(integrityEventKindName(IntegrityEvent::Kind::kResult),
               "result");
  EXPECT_STREQ(integrityEventKindName(IntegrityEvent::Kind::kCycles),
               "cycles");
  EXPECT_STREQ(integrityEventKindName(IntegrityEvent::Kind::kCounters),
               "counters");
}

}  // namespace
}  // namespace adres::obs
