// MetricsRegistry + exporters + embedded MetricsServer: snapshot ordering,
// Prometheus text exposition, adres.metrics.v1 JSON round-trip (validated
// with the shared tests/support/json_min.hpp parser), dynamic families,
// clear() semantics, and a real localhost scrape through httpGet.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/json_min.hpp"
#include "obs/buildinfo.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_server.hpp"
#include "obs/slo.hpp"

namespace adres::obs {
namespace {

using json::JsonParser;
using json::JsonValue;

TEST(MetricsRegistry, SnapshotOrdersByNameAndTypesSamples) {
  MetricsRegistry reg;
  u64 hits = 41;
  reg.addGauge("z_depth", "queue depth", [] { return 3.0; });
  reg.addCounter("a_hits_total", "hits", [&] { return static_cast<double>(hits); });
  reg.addCounter("a_hits_total", "hits", [] { return 1.0; },
                 {{"worker", "1"}});

  MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.samples.size(), 3u);
  EXPECT_EQ(s.samples[0].name, "a_hits_total");
  EXPECT_EQ(s.samples[0].value, 41.0);
  EXPECT_EQ(s.samples[1].labels.size(), 1u) << "registration order in family";
  EXPECT_EQ(s.samples[2].name, "z_depth");
  EXPECT_EQ(s.samples[2].type, MetricType::kGauge);
  EXPECT_EQ(s.sequence, 1u);

  hits = 42;
  EXPECT_EQ(reg.snapshot().samples[0].value, 42.0) << "getters read live";
  EXPECT_EQ(reg.snapshot().sequence, 3u);
}

TEST(MetricsRegistry, DynamicFamilyExpandsPerSnapshot) {
  MetricsRegistry reg;
  int n = 1;
  reg.addCounterFamily("adres_sim_counter", "sim counters", [&n] {
    std::vector<std::pair<Labels, double>> out;
    for (int i = 0; i < n; ++i)
      out.push_back({Labels{{"name", "c" + std::to_string(i)}},
                     static_cast<double>(10 * i)});
    return out;
  });
  EXPECT_EQ(reg.snapshot().samples.size(), 1u);
  n = 3;
  const MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.samples.size(), 3u) << "family size follows the live key set";
  EXPECT_EQ(s.samples[2].labels[0].second, "c2");
  EXPECT_EQ(s.samples[2].value, 20.0);
}

TEST(MetricsRegistry, ClearDropsEverything) {
  MetricsRegistry reg;
  reg.addGauge("g", "gauge", [] { return 1.0; });
  reg.addSummary("s", "summary", 1.0, [] { return HistogramSnapshot{}; });
  EXPECT_EQ(reg.snapshot().samples.size(), 1u);
  reg.clear();
  EXPECT_TRUE(reg.snapshot().samples.empty());
  EXPECT_TRUE(reg.snapshot().summaries.empty());
  EXPECT_TRUE(reg.helpTexts().empty());
}

TEST(MetricsExport, PrometheusTextCarriesHelpTypeLabelsAndSummaries) {
  MetricsRegistry reg;
  reg.addCounter("farm_packets_total", "decoded packets", [] { return 7.0; });
  reg.addGauge("farm_util", "utilization", [] { return 0.5; },
               {{"worker", "0"}});
  LogLinearHistogram h;
  for (u64 v = 1; v <= 100; ++v) h.record(v * 1000);  // ns
  reg.addSummary("farm_latency_us", "decode latency", 1e-3,
                 [&h] { return h.snapshot(); });

  std::ostringstream os;
  reg.writePrometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP farm_packets_total decoded packets\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE farm_packets_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("farm_packets_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("farm_util{worker=\"0\"} 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE farm_latency_us summary\n"), std::string::npos);
  EXPECT_NE(text.find("farm_latency_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("farm_latency_us{quantile=\"0.999\"}"), std::string::npos);
  EXPECT_NE(text.find("farm_latency_us_count 100\n"), std::string::npos);
  // scale 1e-3 applied: sum of 1000..100000 ns == 5050 us.
  EXPECT_NE(text.find("farm_latency_us_sum 5050\n"), std::string::npos);
}

TEST(MetricsExport, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.addCounter("packets_total", "packets", [] { return 12.0; });
  reg.addGauge("depth", "with \"quotes\" in help", [] { return 2.5; },
               {{"queue", "rx\"0\""}});
  LogLinearHistogram h;
  for (u64 v = 1; v <= 9; ++v) h.record(v);
  reg.addSummary("lat", "latency", 1.0, [&h] { return h.snapshot(); });

  std::ostringstream os;
  reg.writeJson(os);
  const JsonValue root = JsonParser(os.str()).parse();  // must not throw
  EXPECT_EQ(root.at("schema").str, "adres.metrics.v1");
  EXPECT_EQ(root.at("sequence").number, 1.0);
  ASSERT_EQ(root.at("metrics").array.size(), 2u);
  const JsonValue& depth = root.at("metrics").array[0];
  EXPECT_EQ(depth.at("name").str, "depth");
  EXPECT_EQ(depth.at("type").str, "gauge");
  EXPECT_EQ(depth.at("labels").at("queue").str, "rx\"0\"");
  EXPECT_EQ(depth.at("value").number, 2.5);
  const JsonValue& pkts = root.at("metrics").array[1];
  EXPECT_EQ(pkts.at("type").str, "counter");
  EXPECT_EQ(pkts.at("value").number, 12.0);
  ASSERT_EQ(root.at("summaries").array.size(), 1u);
  const JsonValue& lat = root.at("summaries").array[0];
  EXPECT_EQ(lat.at("count").number, 9.0);
  EXPECT_EQ(lat.at("sum").number, 45.0);
  EXPECT_EQ(lat.at("min").number, 1.0);
  EXPECT_EQ(lat.at("max").number, 9.0);
  EXPECT_EQ(lat.at("p50").number, 5.0) << "small values are bucket-exact";
  EXPECT_TRUE(lat.hasKey("p999"));
}

TEST(MetricsExport, HistogramBucketsAreCumulativeWithExemplars) {
  // addHistogram renders a Prometheus histogram: power-of-two `le` bounds
  // aligned with the log-linear decades, cumulative counts, and OpenMetrics
  // exemplars (`# {trace_id="..."} value`) attached to the lowest covering
  // bucket exactly once each.
  MetricsRegistry reg;
  LogLinearHistogram h;
  for (u64 v = 1; v <= 8; ++v) h.record(v);
  reg.addHistogram("lat_us", "decode latency", 1.0,
                   [&h] { return h.snapshot(); },
                   [] {
                     return std::vector<MetricExemplar>{{3.5, "00c0ffee"},
                                                        {100.0, "00facade"}};
                   });

  std::ostringstream os;
  reg.writePrometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE lat_us histogram\n"), std::string::npos);
  // Values 1..8 → bounds 1,2,4,8,16; cumulative counts are "values < bound".
  EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"8\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"16\"} 8\n"), std::string::npos);
  // 3.5 fits under le=4; 100 only under +Inf, which takes the leftovers.
  EXPECT_NE(text.find("lat_us_bucket{le=\"4\"} 3 # {trace_id=\"00c0ffee\"} 3.5\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("lat_us_bucket{le=\"+Inf\"} 8 # {trace_id=\"00facade\"} 100\n"),
      std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 36\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 8\n"), std::string::npos);

  // The JSON exporter carries the same histogram with its exemplars.
  std::ostringstream js;
  reg.writeJson(js);
  const JsonValue root = JsonParser(js.str()).parse();
  ASSERT_EQ(root.at("histograms").array.size(), 1u);
  const JsonValue& lat = root.at("histograms").array[0];
  EXPECT_EQ(lat.at("name").str, "lat_us");
  EXPECT_EQ(lat.at("count").number, 8.0);
  EXPECT_EQ(lat.at("sum").number, 36.0);
  ASSERT_EQ(lat.at("exemplars").array.size(), 2u);
  EXPECT_EQ(lat.at("exemplars").array[0].at("trace_id").str, "00c0ffee");
  EXPECT_EQ(lat.at("exemplars").array[1].at("value").number, 100.0);

  // clear() drops histograms along with everything else.
  reg.clear();
  EXPECT_TRUE(reg.snapshot().histograms.empty());
}

TEST(MetricsServer, ReadyzReflectsTheInstalledReadinessCheck) {
  MetricsRegistry reg;
  MetricsServer server(reg, 0);
  ASSERT_GT(server.port(), 0);

  // No check installed: optimistically ready (bare scrape targets).
  std::string status;
  EXPECT_EQ(httpGet("127.0.0.1", server.port(), "/readyz", &status), "ready\n");
  EXPECT_NE(status.find("200"), std::string::npos);

  bool ready = false;
  server.setReadiness([&ready](std::string* reason) {
    if (!ready && reason) *reason = "1/2 workers warm";
    return ready;
  });
  const std::string body =
      httpGet("127.0.0.1", server.port(), "/readyz", &status);
  EXPECT_NE(status.find("503"), std::string::npos)
      << "liveness (/healthz) and readiness (/readyz) must split";
  EXPECT_EQ(body, "not ready: 1/2 workers warm\n");
  EXPECT_EQ(httpGet("127.0.0.1", server.port(), "/healthz"), "ok\n")
      << "a warming process is alive, just not ready";

  ready = true;
  EXPECT_EQ(httpGet("127.0.0.1", server.port(), "/readyz", &status), "ready\n");
  EXPECT_NE(status.find("200"), std::string::npos);

  server.setReadiness({});  // detach: back to optimistic
  EXPECT_EQ(httpGet("127.0.0.1", server.port(), "/readyz"), "ready\n");
  server.stop();
  reg.clear();
}

TEST(MetricsServer, SloEndpointServesEngineJsonOr404) {
  MetricsRegistry reg;
  u64 divergences = 0;
  reg.addCounter("adres_farm_divergences_total", "t", [&] {
    return static_cast<double>(divergences);
  });
  MetricsServer server(reg, 0);
  ASSERT_GT(server.port(), 0);

  std::string status;
  EXPECT_EQ(httpGet("127.0.0.1", server.port(), "/slo", &status),
            "no SLO engine attached\n");
  EXPECT_NE(status.find("404"), std::string::npos);

  SloEngine engine(reg, parseSloSpecList("integrity: divergences < 1"));
  server.setSloEngine(&engine);
  divergences = 2;
  const std::string body = httpGet("127.0.0.1", server.port(), "/slo", &status);
  EXPECT_NE(status.find("200"), std::string::npos);
  const JsonValue root = JsonParser(body).parse();
  EXPECT_EQ(root.at("schema").str, "adres.slo.v1");
  ASSERT_EQ(root.at("slos").array.size(), 1u);
  const JsonValue& st = root.at("slos").array[0];
  EXPECT_EQ(st.at("name").str, "integrity");
  EXPECT_EQ(st.at("value").number, 2.0) << "/slo evaluates live per request";
  EXPECT_TRUE(st.at("breaching").boolean);

  server.setSloEngine(nullptr);  // detach before the engine dies
  EXPECT_EQ(httpGet("127.0.0.1", server.port(), "/slo", &status),
            "no SLO engine attached\n");
  server.stop();
  reg.clear();
}

TEST(BuildInfo, JsonSchemaCarriesVersionAndToolchain) {
  std::ostringstream os;
  writeBuildInfoJson(os);
  const JsonValue root = JsonParser(os.str()).parse();  // must not throw
  EXPECT_EQ(root.at("schema").str, "adres.buildinfo.v1");
  EXPECT_FALSE(root.at("version").str.empty());
  EXPECT_FALSE(root.at("git_describe").str.empty());
  EXPECT_FALSE(root.at("compiler").str.empty());
  EXPECT_TRUE(root.hasKey("build_type"));
  EXPECT_TRUE(root.hasKey("sanitize"));
  EXPECT_EQ(root.at("version").str, buildInfo().version);
}

TEST(MetricsServer, ServesBuildinfoAndCountsItsOwnScrapes) {
  MetricsRegistry reg;
  MetricsServer server(reg, 0);
  ASSERT_GT(server.port(), 0);
  server.registerSelfMetrics(reg);

  // Request 1: /buildinfo serves the same JSON the writer produces.
  std::string status;
  const std::string body =
      httpGet("127.0.0.1", server.port(), "/buildinfo", &status);
  EXPECT_NE(status.find("200"), std::string::npos);
  const JsonValue root = JsonParser(body).parse();
  EXPECT_EQ(root.at("schema").str, "adres.buildinfo.v1");
  EXPECT_EQ(root.at("version").str, buildInfo().version);

  // Request 2: the scrape counter includes the in-flight request, so the
  // first /metrics after /buildinfo reads exactly 2.
  const std::string scrape1 = httpGet("127.0.0.1", server.port(), "/metrics");
  EXPECT_NE(scrape1.find("adres_metrics_scrapes_total 2\n"),
            std::string::npos);
  // Request 3: both prior requests have recorded handling durations by the
  // time this one is served (the serve loop is sequential).
  const std::string scrape2 = httpGet("127.0.0.1", server.port(), "/metrics");
  EXPECT_NE(scrape2.find("adres_metrics_scrapes_total 3\n"),
            std::string::npos);
  EXPECT_NE(scrape2.find("# TYPE adres_metrics_scrape_duration_us summary\n"),
            std::string::npos);
  EXPECT_NE(scrape2.find("adres_metrics_scrape_duration_us_count 2\n"),
            std::string::npos);

  server.stop();
  reg.clear();
}

TEST(MetricsServer, ServesPrometheusJsonHealthAnd404OverRealHttp) {
  MetricsRegistry reg;
  reg.addCounter("scrape_me_total", "a counter", [] { return 3.0; });
  MetricsServer server(reg, 0);  // ephemeral port
  ASSERT_GT(server.port(), 0);

  std::string status;
  const std::string text =
      httpGet("127.0.0.1", server.port(), "/metrics", &status);
  EXPECT_NE(status.find("200"), std::string::npos);
  EXPECT_NE(text.find("scrape_me_total 3\n"), std::string::npos);

  const std::string body =
      httpGet("localhost", server.port(), "/metrics.json", &status);
  EXPECT_NE(status.find("200"), std::string::npos);
  const JsonValue root = JsonParser(body).parse();
  EXPECT_EQ(root.at("schema").str, "adres.metrics.v1");
  EXPECT_EQ(root.at("metrics").array[0].at("value").number, 3.0);

  EXPECT_EQ(httpGet("127.0.0.1", server.port(), "/healthz"), "ok\n");
  httpGet("127.0.0.1", server.port(), "/nope", &status);
  EXPECT_NE(status.find("404"), std::string::npos);
  EXPECT_GE(server.requests(), 4u);

  server.stop();
  server.stop();  // idempotent
  EXPECT_EQ(httpGet("127.0.0.1", server.port(), "/metrics"), "")
      << "stopped server no longer answers";
}

}  // namespace
}  // namespace adres::obs
