// adres.postmortem.v1 bundles: write -> load round-trip fidelity, raw JSON
// schema validation via json_min, and the bounded atomic PostmortemWriter
// store (eviction, counters, on-disk lifecycle).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/json_min.hpp"
#include "obs/postmortem.hpp"
#include "trace/span.hpp"

namespace adres::obs {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

ResultRecord record(u64 cycles, bool flipBit) {
  ResultRecord r;
  r.valid = true;
  r.detected = true;
  r.ltfStart = 160;
  r.stop = "halt";
  r.cycles = cycles;
  r.totalOps = 90000;
  r.bits.assign(96, 0);
  for (std::size_t i = 0; i < r.bits.size(); i += 2) r.bits[i] = 1;
  if (flipBit) r.bits[17] ^= 1;
  RegionProfile rp;
  rp.cycles = cycles / 2;
  rp.vliwCycles = cycles / 4;
  rp.cgaCycles = cycles / 4;
  rp.ops = 45000;
  rp.vliwOps = 15000;
  rp.cgaOps = 30000;
  rp.entries = 3;
  r.regions[0] = rp;
  rp.entries = 1;
  r.regions[4] = rp;
  return r;
}

/// A bundle exercising every serialized field.
PostmortemBundle fullBundle() {
  PostmortemBundle b;
  b.trigger = "divergence";
  b.reason = "1 of 96 payload bits differ";
  b.jobId = 41;
  b.tag = 7;
  b.worker = 3;
  b.traceId = 0xDEADBEEF12345678ull;
  b.modulation = 3;  // kQam64
  b.numSymbols = 2;
  b.execTier = "native";
  b.shadowTier = "interpreted";
  b.maxCycles = 200'000'000;
  b.faultInjectSeed = 0xFA0171ull;
  for (int c = 0; c < 2; ++c)
    for (int i = 0; i < 64; ++i)
      b.rx[c].push_back(cint16{static_cast<i16>(i - 32 + c),
                               static_cast<i16>(-i + 3 * c)});
  b.primary = record(123456, /*flipBit=*/true);
  b.shadow = record(123456, /*flipBit=*/false);

  b.spans.traceId = b.traceId;
  b.spans.jobId = b.jobId;
  b.spans.worker = b.worker;
  b.spans.tag = b.tag;
  trace::Span sp;
  sp.kind = trace::SpanKind::kDecode;
  sp.name = "decode";
  sp.startUs = 12.5;
  sp.durUs = 800.25;
  sp.startCycle = 0;
  sp.cycles = 123456;
  b.spans.spans.push_back(sp);
  sp.kind = trace::SpanKind::kRegion;
  sp.name = "fft";
  sp.ops = 45000;
  b.spans.spans.push_back(sp);

  TraceEvent ev;
  ev.cycle = 1000;
  ev.dur = 16;
  ev.kind = TraceEventKind::kKernel;
  ev.track = 2;
  ev.a = 5;
  ev.b = 640;
  b.ring.push_back(ev);
  ev.cycle = 1016;
  ev.dur = 0;
  ev.kind = TraceEventKind::kModeSwitch;
  b.ring.push_back(ev);
  b.ringAccepted = 5000;
  b.ringDropped = 904;
  b.ringCapacity = 4096;
  return b;
}

void expectRecordEq(const ResultRecord& a, const ResultRecord& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.ltfStart, b.ltfStart);
  EXPECT_EQ(a.stop, b.stop);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.totalOps, b.totalOps);
  EXPECT_EQ(a.bits, b.bits);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (const auto& [id, rp] : a.regions) {
    ASSERT_TRUE(b.regions.count(id));
    const RegionProfile& o = b.regions.at(id);
    EXPECT_EQ(rp.cycles, o.cycles);
    EXPECT_EQ(rp.vliwCycles, o.vliwCycles);
    EXPECT_EQ(rp.cgaCycles, o.cgaCycles);
    EXPECT_EQ(rp.ops, o.ops);
    EXPECT_EQ(rp.vliwOps, o.vliwOps);
    EXPECT_EQ(rp.cgaOps, o.cgaOps);
    EXPECT_EQ(rp.entries, o.entries);
  }
}

TEST(PostmortemBundleIo, WriteLoadRoundTripsEveryField) {
  PostmortemConfig cfg;
  cfg.enabled = true;
  cfg.dir = freshDir("adres_pm_roundtrip");
  PostmortemWriter writer(cfg);

  const PostmortemBundle b = fullBundle();
  const std::string path = writer.write(b);
  ASSERT_FALSE(path.empty());
  ASSERT_TRUE(fs::exists(path));

  const PostmortemBundle r = loadPostmortemBundle(path);
  EXPECT_EQ(r.trigger, b.trigger);
  EXPECT_EQ(r.reason, b.reason);
  EXPECT_EQ(r.jobId, b.jobId);
  EXPECT_EQ(r.tag, b.tag);
  EXPECT_EQ(r.worker, b.worker);
  EXPECT_EQ(r.traceId, b.traceId) << "trace id must survive via hex string";
  EXPECT_EQ(r.modulation, b.modulation);
  EXPECT_EQ(r.numSymbols, b.numSymbols);
  EXPECT_EQ(r.execTier, b.execTier);
  EXPECT_EQ(r.shadowTier, b.shadowTier);
  EXPECT_EQ(r.maxCycles, b.maxCycles);
  EXPECT_EQ(r.faultInjectSeed, b.faultInjectSeed);
  EXPECT_EQ(r.rx[0], b.rx[0]) << "rx payload must be sample-exact";
  EXPECT_EQ(r.rx[1], b.rx[1]);
  expectRecordEq(r.primary, b.primary);
  expectRecordEq(r.shadow, b.shadow);

  EXPECT_EQ(r.spans.traceId, b.spans.traceId);
  ASSERT_EQ(r.spans.spans.size(), b.spans.spans.size());
  for (std::size_t i = 0; i < b.spans.spans.size(); ++i) {
    EXPECT_EQ(r.spans.spans[i].kind, b.spans.spans[i].kind);
    EXPECT_EQ(r.spans.spans[i].name, b.spans.spans[i].name);
    EXPECT_DOUBLE_EQ(r.spans.spans[i].durUs, b.spans.spans[i].durUs);
    EXPECT_EQ(r.spans.spans[i].cycles, b.spans.spans[i].cycles);
    EXPECT_EQ(r.spans.spans[i].ops, b.spans.spans[i].ops);
  }
  ASSERT_EQ(r.ring.size(), b.ring.size());
  for (std::size_t i = 0; i < b.ring.size(); ++i) {
    EXPECT_EQ(r.ring[i].cycle, b.ring[i].cycle);
    EXPECT_EQ(r.ring[i].dur, b.ring[i].dur);
    EXPECT_EQ(r.ring[i].kind, b.ring[i].kind);
    EXPECT_EQ(r.ring[i].track, b.ring[i].track);
    EXPECT_EQ(r.ring[i].a, b.ring[i].a);
    EXPECT_EQ(r.ring[i].b, b.ring[i].b);
  }
  EXPECT_EQ(r.ringAccepted, b.ringAccepted);
  EXPECT_EQ(r.ringDropped, b.ringDropped);
  EXPECT_EQ(r.ringCapacity, b.ringCapacity);
}

TEST(PostmortemBundleIo, AShadowlessBundleRoundTripsInvalidShadow) {
  PostmortemBundle b = fullBundle();
  b.shadow = ResultRecord{};  // valid == false: watchdog/SLO-breach bundles
  b.shadowTier.clear();
  std::ostringstream os;
  writePostmortemJson(b, os);
  const std::string path =
      testing::TempDir() + "adres_pm_shadowless.json";
  std::ofstream(path) << os.str();
  const PostmortemBundle r = loadPostmortemBundle(path);
  EXPECT_TRUE(r.primary.valid);
  EXPECT_FALSE(r.shadow.valid);
  EXPECT_EQ(r.shadowTier, "");
}

TEST(PostmortemBundleIo, RawJsonMatchesTheV1Schema) {
  MetricsRegistry reg;
  reg.addCounter("adres_farm_divergences_total", "t", [] { return 1.0; });
  std::ostringstream os;
  writePostmortemJson(fullBundle(), os, &reg);
  reg.clear();

  json::JsonParser parser(os.str());
  const json::JsonValue root = parser.parse();
  EXPECT_EQ(root.at("schema").str, "adres.postmortem.v1");
  EXPECT_EQ(root.at("trigger").str, "divergence");
  // 64-bit ids ride as 16-hex-digit strings, immune to double rounding.
  EXPECT_EQ(root.at("trace_id").str, "deadbeef12345678");
  EXPECT_EQ(root.at("trace_id").str.size(), 16u);
  EXPECT_EQ(root.at("config").at("exec_tier").str, "native");
  EXPECT_EQ(root.at("config").at("num_symbols").number, 2.0);
  EXPECT_TRUE(root.hasKey("buildinfo"));
  ASSERT_TRUE(root.hasKey("metrics"));
  EXPECT_EQ(root.at("metrics").at("schema").str, "adres.metrics.v1");
  EXPECT_TRUE(root.at("primary").at("detected").boolean);
  EXPECT_EQ(root.at("rx").array.size(), 2u);
}

TEST(PostmortemWriter, BoundsTheStoreByEvictingOldest) {
  PostmortemConfig cfg;
  cfg.enabled = true;
  cfg.dir = freshDir("adres_pm_evict");
  cfg.maxBundles = 3;
  PostmortemWriter writer(cfg);

  PostmortemBundle b = fullBundle();
  std::vector<std::string> written;
  for (int i = 0; i < 5; ++i) {
    b.jobId = static_cast<u64>(i);
    written.push_back(writer.write(b));
  }
  EXPECT_EQ(writer.written(), 5u);
  EXPECT_EQ(writer.evicted(), 2u);
  const std::vector<std::string> kept = writer.paths();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept.front(), written[2]) << "oldest retained is write #3";
  EXPECT_EQ(kept.back(), written[4]);
  EXPECT_FALSE(fs::exists(written[0]));
  EXPECT_FALSE(fs::exists(written[1]));
  for (const std::string& p : kept) {
    EXPECT_TRUE(fs::exists(p));
    // Every retained file is a complete, parseable bundle (atomic writes:
    // no torn tmp states are ever visible under the final name).
    EXPECT_NO_THROW(loadPostmortemBundle(p));
  }
}

TEST(PostmortemBundleIo, LoadRejectsMissingOrForeignFiles) {
  EXPECT_THROW(loadPostmortemBundle(testing::TempDir() + "adres_pm_nope.json"),
               SimError);
  const std::string foreign = testing::TempDir() + "adres_pm_foreign.json";
  std::ofstream(foreign) << "{\"schema\": \"adres.metrics.v1\"}";
  EXPECT_THROW(loadPostmortemBundle(foreign), SimError);
}

}  // namespace
}  // namespace adres::obs
