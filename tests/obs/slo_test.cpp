// SLO spec grammar (parse / render round-trip), SloEngine evaluation
// against a live MetricsRegistry (burn rate, for-count de-flapping, breach
// hook), the exported adres_slo_* series and the adres.slo.v1 JSON.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "common/check.hpp"
#include "common/json_min.hpp"
#include "obs/histogram.hpp"
#include "obs/slo.hpp"

namespace adres::obs {
namespace {

TEST(SloGrammar, ParsesEveryMetricAndRoundTrips) {
  const SloSpec p99 = parseSloSpec("p99: p99_latency_us < 50000");
  EXPECT_EQ(p99.name, "p99");
  EXPECT_EQ(p99.kind, SloKind::kP99LatencyUs);
  EXPECT_DOUBLE_EQ(p99.threshold, 50000);
  EXPECT_TRUE(p99.strict);
  EXPECT_EQ(p99.forCount, 1);

  const SloSpec miss =
      parseSloSpec("miss: deadline_miss_rate(20000) <= 0.01 for 3");
  EXPECT_EQ(miss.kind, SloKind::kDeadlineMissRate);
  EXPECT_DOUBLE_EQ(miss.deadlineUs, 20000);
  EXPECT_DOUBLE_EQ(miss.threshold, 0.01);
  EXPECT_FALSE(miss.strict);
  EXPECT_EQ(miss.forCount, 3);

  const SloSpec share = parseSloSpec("wait: queue_wait_share <= 0.5");
  EXPECT_EQ(share.kind, SloKind::kQueueWaitShare);
  const SloSpec wd = parseSloSpec("wd: watchdog_events < 1");
  EXPECT_EQ(wd.kind, SloKind::kWatchdogEvents);
  const SloSpec div = parseSloSpec("integrity: divergences < 1 for 2");
  EXPECT_EQ(div.kind, SloKind::kDivergences);

  // Canonical rendering re-parses to the same spec.
  for (const SloSpec& s : {p99, miss, share, wd, div}) {
    const SloSpec back = parseSloSpec(sloSpecToString(s));
    EXPECT_EQ(back.name, s.name);
    EXPECT_EQ(back.kind, s.kind);
    EXPECT_DOUBLE_EQ(back.threshold, s.threshold);
    EXPECT_EQ(back.strict, s.strict);
    EXPECT_DOUBLE_EQ(back.deadlineUs, s.deadlineUs);
    EXPECT_EQ(back.forCount, s.forCount);
  }
}

TEST(SloGrammar, ListSplitsOnSemicolons) {
  const std::vector<SloSpec> specs = parseSloSpecList(
      "p99: p99_latency_us < 50000; integrity: divergences < 1;");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "p99");
  EXPECT_EQ(specs[1].name, "integrity");
}

TEST(SloGrammar, RejectsMalformedSpecs) {
  EXPECT_THROW(parseSloSpec("x: not_a_metric < 1"), SimError);
  EXPECT_THROW(parseSloSpec("p99_latency_us < 1"), SimError);  // no name
  EXPECT_THROW(parseSloSpec("x: p99_latency_us"), SimError);   // no threshold
  EXPECT_THROW(parseSloSpec("x: p99_latency_us > 1"), SimError);
  EXPECT_THROW(parseSloSpec("x: p99_latency_us < 1 for 0"), SimError);
  EXPECT_THROW(parseSloSpec("x: deadline_miss_rate < 0.1"), SimError)
      << "deadline_miss_rate needs its (deadline_us) argument";
}

/// Registry wired to mutable sources mimicking the farm's series.
struct FakeFarm {
  LogLinearHistogram latencyNs;    // adres_farm_latency_host_us (scale 1e-3)
  LogLinearHistogram queueWaitNs;  // adres_farm_queue_wait_us (scale 1e-3)
  std::atomic<u64> healthEvents{0};
  std::atomic<u64> divergences{0};
  MetricsRegistry reg;

  FakeFarm() {
    reg.addSummary("adres_farm_latency_host_us", "t", 1e-3,
                   [this] { return latencyNs.snapshot(); });
    reg.addSummary("adres_farm_queue_wait_us", "t", 1e-3,
                   [this] { return queueWaitNs.snapshot(); });
    reg.addCounter("adres_farm_health_events_total", "t", [this] {
      return static_cast<double>(healthEvents.load());
    });
    reg.addCounter("adres_farm_divergences_total", "t", [this] {
      return static_cast<double>(divergences.load());
    });
  }
  ~FakeFarm() { reg.clear(); }
};

TEST(SloEngine, EvaluatesLatencyShareAndMissRate) {
  FakeFarm farm;
  for (int i = 0; i < 99; ++i) farm.latencyNs.record(1'000'000);  // 1 ms
  farm.latencyNs.record(100'000'000);                             // 100 ms tail
  for (int i = 0; i < 100; ++i) farm.queueWaitNs.record(1'000'000);

  SloEngine engine(farm.reg,
                   parseSloSpecList("p99: p99_latency_us < 1000000; "
                                    "wait: queue_wait_share <= 0.9; "
                                    "miss: deadline_miss_rate(10000) <= 0.05"));
  const std::vector<SloStatus> st = engine.evaluate();
  ASSERT_EQ(st.size(), 3u);

  EXPECT_TRUE(st[0].haveValue);
  EXPECT_GT(st[0].value, 900.0) << "p99 should land near the 100 ms tail-free "
                                   "bulk or above (us scale)";
  EXPECT_FALSE(st[0].fired);
  EXPECT_NEAR(st[0].burnRate, st[0].value / 1000000.0, 1e-9);

  // Wait sum 100 ms vs latency sum 199 ms -> share = 100/299.
  EXPECT_TRUE(st[1].haveValue);
  EXPECT_NEAR(st[1].value, 100.0 / 299.0, 0.05);
  EXPECT_FALSE(st[1].fired);

  // 1/100 packets above the 10 ms deadline (bucketized: allow slack).
  EXPECT_TRUE(st[2].haveValue);
  EXPECT_NEAR(st[2].value, 0.01, 0.005);
  EXPECT_FALSE(st[2].fired);
}

TEST(SloEngine, DeadlineMissRatePrefersTheCellSummaryWhenPopulated) {
  // Farm host latencies all fast (no host-side "misses")...
  FakeFarm farm;
  for (int i = 0; i < 100; ++i) farm.latencyNs.record(1'000'000);  // 1 ms
  // ...while the cell layer's SIMULATED latencies blow the 10 ms frame
  // budget half the time.  deadline_miss_rate is a simulated-time contract:
  // once the cell summary has samples it must win over the farm series.
  LogLinearHistogram cellLatencyNs;
  farm.reg.addSummary("adres_cell_latency_us", "t", 1e-3,
                      [&] { return cellLatencyNs.snapshot(); });

  SloEngine engine(farm.reg,
                   parseSloSpecList("miss: deadline_miss_rate(10000) <= 0.05"));
  // Empty cell summary: falls back to the farm host-latency series.
  std::vector<SloStatus> st = engine.evaluate();
  EXPECT_TRUE(st[0].haveValue);
  EXPECT_NEAR(st[0].value, 0.0, 1e-9);

  for (int i = 0; i < 50; ++i) cellLatencyNs.record(1'000'000);    // 1 ms
  for (int i = 0; i < 50; ++i) cellLatencyNs.record(100'000'000);  // 100 ms
  st = engine.evaluate();
  EXPECT_TRUE(st[0].haveValue);
  EXPECT_NEAR(st[0].value, 0.5, 0.05)
      << "the populated cell summary must drive the miss rate";
}

TEST(SloEngine, ForCountDeflapsAndHookFiresOncePerOnset) {
  FakeFarm farm;
  SloEngine engine(farm.reg,
                   parseSloSpecList("integrity: divergences < 1 for 2"));
  int hookCalls = 0;
  engine.setBreachHook([&](const SloStatus& st) {
    ++hookCalls;
    EXPECT_EQ(st.spec.name, "integrity");
    EXPECT_TRUE(st.fired);
  });

  EXPECT_FALSE(engine.evaluate()[0].breaching);
  farm.divergences = 1;
  std::vector<SloStatus> st = engine.evaluate();
  EXPECT_TRUE(st[0].breaching);
  EXPECT_FALSE(st[0].fired) << "one breaching eval < forCount 2";
  EXPECT_EQ(hookCalls, 0);
  st = engine.evaluate();
  EXPECT_TRUE(st[0].fired);
  EXPECT_EQ(st[0].breaches, 1u);
  EXPECT_EQ(hookCalls, 1);
  st = engine.evaluate();
  EXPECT_TRUE(st[0].fired);
  EXPECT_EQ(st[0].breaches, 1u) << "sustained breach is one onset";
  EXPECT_EQ(hookCalls, 1);
  EXPECT_GE(st[0].burnRate, 1.0);

  farm.divergences = 0;
  st = engine.evaluate();
  EXPECT_FALSE(st[0].breaching);
  EXPECT_FALSE(st[0].fired);
  EXPECT_EQ(st[0].consecutive, 0);
}

TEST(SloEngine, ExportsGaugeFamiliesOnTheRegistry) {
  FakeFarm farm;
  SloEngine engine(farm.reg, parseSloSpecList("integrity: divergences < 1"));
  engine.registerMetrics(farm.reg);
  farm.divergences = 3;
  engine.evaluate();

  const MetricsSnapshot snap = farm.reg.snapshot();
  bool value = false, burn = false, breaching = false, breaches = false;
  for (const MetricSample& s : snap.samples) {
    if (s.labels != Labels{{"slo", "integrity"}}) continue;
    if (s.name == "adres_slo_value") value = s.value == 3.0;
    if (s.name == "adres_slo_burn_rate") burn = s.value == 3.0;
    if (s.name == "adres_slo_breaching") breaching = s.value == 1.0;
    if (s.name == "adres_slo_breaches_total") breaches = s.value == 1.0;
  }
  EXPECT_TRUE(value);
  EXPECT_TRUE(burn);
  EXPECT_TRUE(breaching);
  EXPECT_TRUE(breaches);
}

TEST(SloEngine, WriteJsonIsParsableSloV1) {
  FakeFarm farm;
  SloEngine engine(farm.reg,
                   parseSloSpecList("p99: p99_latency_us < 100; "
                                    "integrity: divergences < 1 for 2"));
  engine.evaluate();
  std::ostringstream os;
  engine.writeJson(os);

  json::JsonParser parser(os.str());
  const json::JsonValue root = parser.parse();
  EXPECT_EQ(root.at("schema").str, "adres.slo.v1");
  const std::vector<json::JsonValue>& slos = root.at("slos").array;
  ASSERT_EQ(slos.size(), 2u);
  EXPECT_EQ(slos[0].at("name").str, "p99");
  EXPECT_EQ(slos[0].at("metric").str, "p99_latency_us");
  EXPECT_EQ(slos[1].at("for").number, 2.0);
  // Rendered spec strings re-parse (round-trip through the grammar).
  for (const json::JsonValue& s : slos)
    EXPECT_NO_THROW(parseSloSpec(s.at("spec").str));
}

TEST(SloEngine, PeriodicMonitorEvaluatesOnItsOwn) {
  FakeFarm farm;
  SloEngine engine(farm.reg, parseSloSpecList("integrity: divergences < 1"));
  engine.startPeriodic(5);
  for (int i = 0; i < 200 && engine.totalEvaluations() < 3; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  engine.stop();
  EXPECT_GE(engine.totalEvaluations(), 3u);
}

}  // namespace
}  // namespace adres::obs
