// WorkerWatchdog: stall detection and auto-cancel, soft-budget warnings,
// decode-end classification (StopReason -> HealthEvent), and the farm-level
// acceptance scenario — a deliberately wedged worker is detected, cancelled
// and reported as a structured event while the farm still completes (no
// silent hang).  TSan covers the monitor/worker interplay here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "dsp/channel.hpp"
#include "obs/watchdog.hpp"
#include "platform/packet_farm.hpp"

namespace adres::obs {
namespace {

using namespace std::chrono_literals;

/// Polls `pred` every ms until it holds or `ms` elapses.
bool eventually(int ms, const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

TEST(Watchdog, IdleWorkersAreNeverStalled) {
  WatchdogConfig cfg;
  cfg.pollMs = 2;
  cfg.stallTimeoutMs = 10;
  WorkerWatchdog wd(2, cfg);
  wd.start();
  std::this_thread::sleep_for(60ms);
  wd.stop();
  EXPECT_EQ(wd.eventCount(), 0u);
}

TEST(Watchdog, DetectsStallAndCancelsWhenConfigured) {
  WatchdogConfig cfg;
  cfg.pollMs = 2;
  cfg.stallTimeoutMs = 20;
  cfg.cancelStalled = true;
  WorkerWatchdog wd(2, cfg);
  wd.start();

  // Worker 0 goes busy and its heartbeat never advances.
  wd.health(0).beginJob(7);
  ASSERT_TRUE(eventually(2000, [&] { return wd.eventCount() > 0; }))
      << "stall must be detected within the timeout";
  ASSERT_TRUE(eventually(2000, [&] {
    return wd.health(0).cancel.load() != 0;
  })) << "cancelStalled must set the worker's cancel flag";

  const std::vector<HealthEvent> evs = wd.events();
  ASSERT_GE(evs.size(), 1u);
  EXPECT_EQ(evs[0].kind, HealthEvent::Kind::kStalled);
  EXPECT_EQ(evs[0].worker, 0);
  EXPECT_EQ(evs[0].jobId, 7u);
  EXPECT_GE(evs[0].sinceMs, cfg.stallTimeoutMs);
  EXPECT_NE(evs[0].detail.find("no progress"), std::string::npos);
  EXPECT_EQ(wd.health(1).cancel.load(), 0u) << "only the stalled worker";

  // A stall is reported once, not once per poll.
  const u64 after = wd.eventCount();
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(wd.eventCount(), after);
  wd.health(0).endJob();
  wd.stop();
}

TEST(Watchdog, AdvancingHeartbeatIsNotAStall) {
  WatchdogConfig cfg;
  cfg.pollMs = 2;
  cfg.stallTimeoutMs = 30;
  WorkerWatchdog wd(1, cfg);
  wd.start();
  wd.health(0).beginJob(1);
  // Keep the heartbeat moving for ~4x the stall timeout.
  for (int i = 0; i < 24; ++i) {
    wd.health(0).heartbeatCycles.fetch_add(1000);
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(wd.eventCount(), 0u);
  wd.health(0).endJob();
  wd.stop();
}

TEST(Watchdog, SoftBudgetWarnsOncePerJob) {
  WatchdogConfig cfg;
  cfg.pollMs = 2;
  cfg.stallTimeoutMs = 0;  // stall detection off
  cfg.softBudgetCycles = 500;
  WorkerWatchdog wd(1, cfg);
  std::atomic<int> hookCalls{0};
  wd.setEventHook([&](const HealthEvent& ev) {
    EXPECT_EQ(ev.kind, HealthEvent::Kind::kOverBudget);
    hookCalls.fetch_add(1);
  });
  wd.start();
  wd.health(0).beginJob(3);
  wd.health(0).heartbeatCycles.store(501);
  ASSERT_TRUE(eventually(2000, [&] { return wd.eventCount() == 1; }));
  wd.health(0).heartbeatCycles.store(5000);  // still the same job: no repeat
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(wd.eventCount(), 1u);
  EXPECT_EQ(hookCalls.load(), 1);
  const HealthEvent ev = wd.events()[0];
  EXPECT_EQ(ev.jobId, 3u);
  EXPECT_GT(ev.cycles, cfg.softBudgetCycles);
  wd.health(0).endJob();
  wd.stop();
}

TEST(Watchdog, NoteDecodeEndClassifiesStopReasons) {
  WatchdogConfig cfg;
  cfg.enabled = false;  // classification works without the monitor thread
  WorkerWatchdog wd(2, cfg);
  wd.noteDecodeEnd(0, 11, StopReason::kHalt, 1000);
  EXPECT_EQ(wd.eventCount(), 0u) << "clean halts are not events";
  wd.noteDecodeEnd(0, 12, StopReason::kMaxCycles, 2000);
  wd.noteDecodeEnd(1, 13, StopReason::kCancelled, 300);
  const std::vector<HealthEvent> evs = wd.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].kind, HealthEvent::Kind::kBudgetExhausted);
  EXPECT_EQ(evs[0].jobId, 12u);
  EXPECT_NE(evs[0].detail.find("max_cycles"), std::string::npos);
  EXPECT_EQ(evs[1].kind, HealthEvent::Kind::kCancelled);
  EXPECT_EQ(evs[1].worker, 1);
  EXPECT_NE(evs[1].detail.find("cancelled"), std::string::npos);
  EXPECT_STREQ(healthEventKindName(evs[0].kind), "budget_exhausted");
  EXPECT_STREQ(healthEventKindName(evs[1].kind), "cancelled");
}

// ---------------------------------------------------------------------------
// Farm-level acceptance: a stalled worker is reported and un-wedged, the
// farm completes instead of hanging.

TEST(FarmWatchdog, StalledWorkerIsCancelledAndReportedNotHung) {
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = 2;
  Rng rng(100);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.seed = 1;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);

  platform::FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 1;
  fc.watchdog.pollMs = 2;
  // Frequent heartbeats + a generous timeout: a real decode must never look
  // stalled even on a slow (sanitizer) host, while the wedged job below has
  // its heartbeat frozen at 0 and trips the timeout regardless.
  fc.run.progressIntervalCycles = 1024;
  fc.watchdog.stallTimeoutMs = 250;
  fc.watchdog.cancelStalled = true;
  // Wedge job 0 before its decode: spin (heartbeat frozen at 0) until the
  // watchdog cancels us — exactly what a hung simulator would look like,
  // but recoverable so the test can assert on the outcome.
  std::atomic<platform::PacketFarm*> farmPtr{nullptr};
  std::atomic<bool> sawCancel{false};
  fc.preDecodeHook = [&](int worker, const platform::RxJob& job) {
    if (job.id != 0) return;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    platform::PacketFarm* farm;
    while ((farm = farmPtr.load()) == nullptr &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(1ms);
    ASSERT_NE(farm, nullptr);
    while (farm->watchdog().health(worker).cancel.load() == 0 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(1ms);
    sawCancel.store(farm->watchdog().health(worker).cancel.load() != 0);
  };

  platform::PacketFarm farm(fc);
  farmPtr.store(&farm);
  (void)farm.submit(rx);  // job 0: wedges, gets cancelled
  (void)farm.submit(rx);  // job 1: decodes normally afterwards
  const std::vector<platform::RxOutcome> outs = farm.finish();

  ASSERT_EQ(outs.size(), 2u) << "the farm completed — no silent hang";
  EXPECT_TRUE(sawCancel.load()) << "watchdog cancelled the wedged worker";
  EXPECT_EQ(outs[0].result.stop, StopReason::kCancelled)
      << "the wedged decode surfaces a structured outcome";
  EXPECT_TRUE(outs[1].result.halted()) << "the next packet decodes cleanly";
  EXPECT_EQ(outs[1].result.bits, pkt.bits);

  bool stalled = false, cancelled = false;
  for (const HealthEvent& ev : farm.healthEvents()) {
    if (ev.kind == HealthEvent::Kind::kStalled && ev.jobId == 0) stalled = true;
    if (ev.kind == HealthEvent::Kind::kCancelled && ev.jobId == 0)
      cancelled = true;
  }
  EXPECT_TRUE(stalled) << "stall reported as a structured health event";
  EXPECT_TRUE(cancelled) << "cancelled decode classified by noteDecodeEnd";
}

}  // namespace
}  // namespace adres::obs
