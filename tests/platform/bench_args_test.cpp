// The shared bench CLI parser (bench/bench_args.hpp): strict-by-
// construction argument handling — unknown flags (single- or double-dash),
// non-numeric values for numeric bindings and excess positionals all fail
// loudly with parseError() set, while valid spellings (--flag value,
// --flag=value, negative numeric positionals) bind as declared.  A typo'd
// sweep axis must never silently benchmark the defaults.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_args.hpp"

namespace adres::bench {
namespace {

/// argv adapter: parse("a", "b") == `prog a b`.
bool parseTokens(Args& args, std::vector<std::string> tokens) {
  std::vector<std::string> storage;
  storage.push_back("prog");
  for (std::string& t : tokens) storage.push_back(std::move(t));
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (std::string& s : storage) argv.push_back(s.data());
  return args.parse(static_cast<int>(argv.size()), argv.data());
}

struct Declared {
  int packets = 24;
  double rate = 1.5;
  std::string path = "out.json";
  int port = -1;
  double miss = 0.05;
  std::string tier = "native";
  bool verbose = false;
  Args args{"prog", "test"};

  Declared() {
    args.positional("packets", "h", &packets);
    args.positional("rate", "h", &rate);
    args.positional("path", "h", &path);
    args.flag("port", "PORT", "h", &port);
    args.flag("miss", "RATE", "h", &miss);
    args.flag("tier", "NAME", "h", &tier);
    args.flag("verbose", "h", &verbose);
  }
};

TEST(BenchArgs, BindsPositionalsAndFlagsInBothSpellings) {
  Declared d;
  EXPECT_TRUE(parseTokens(
      d.args, {"48", "2.5", "x.json", "--port", "9090", "--miss=0.01",
               "--tier", "interpreted", "--verbose"}));
  EXPECT_FALSE(d.args.parseError());
  EXPECT_EQ(d.packets, 48);
  EXPECT_DOUBLE_EQ(d.rate, 2.5);
  EXPECT_EQ(d.path, "x.json");
  EXPECT_EQ(d.port, 9090);
  EXPECT_DOUBLE_EQ(d.miss, 0.01);
  EXPECT_EQ(d.tier, "interpreted");
  EXPECT_TRUE(d.verbose);
}

TEST(BenchArgs, OmittedArgumentsKeepTheirDefaults) {
  Declared d;
  EXPECT_TRUE(parseTokens(d.args, {}));
  EXPECT_EQ(d.packets, 24);
  EXPECT_DOUBLE_EQ(d.rate, 1.5);
  EXPECT_EQ(d.port, -1);
  EXPECT_FALSE(d.verbose);
}

TEST(BenchArgs, UnknownDoubleDashFlagFailsLoudly) {
  Declared d;
  EXPECT_FALSE(parseTokens(d.args, {"--prot", "9090"}));
  EXPECT_TRUE(d.args.parseError()) << "callers must exit 1, not run anyway";
}

TEST(BenchArgs, SingleDashTokenIsAFlagTypoNotAPositional) {
  Declared d;
  EXPECT_FALSE(parseTokens(d.args, {"-port", "9090"}));
  EXPECT_TRUE(d.args.parseError());
}

TEST(BenchArgs, NegativeNumbersStillBindAsPositionals) {
  Declared d;
  EXPECT_TRUE(parseTokens(d.args, {"-3", "-2.5"}));
  EXPECT_EQ(d.packets, -3);
  EXPECT_DOUBLE_EQ(d.rate, -2.5);
}

TEST(BenchArgs, NonNumericValueForNumericBindingFails) {
  {
    Declared d;
    EXPECT_FALSE(parseTokens(d.args, {"lots"}));  // int positional
    EXPECT_TRUE(d.args.parseError());
  }
  {
    Declared d;
    EXPECT_FALSE(parseTokens(d.args, {"24", "fast"}));  // double positional
    EXPECT_TRUE(d.args.parseError());
  }
  {
    Declared d;
    EXPECT_FALSE(parseTokens(d.args, {"--port", "ephemeral"}));
    EXPECT_TRUE(d.args.parseError());
  }
  {
    Declared d;
    EXPECT_FALSE(parseTokens(d.args, {"--port", "80x"}));  // trailing junk
    EXPECT_TRUE(d.args.parseError());
  }
}

TEST(BenchArgs, MissingFlagValueAndExcessPositionalsFail) {
  {
    Declared d;
    EXPECT_FALSE(parseTokens(d.args, {"--port"}));
    EXPECT_TRUE(d.args.parseError());
  }
  {
    Declared d;
    EXPECT_FALSE(parseTokens(d.args, {"1", "2", "a", "extra"}));
    EXPECT_TRUE(d.args.parseError());
  }
}

TEST(BenchArgs, HelpReturnsFalseWithoutError) {
  Declared d;
  EXPECT_FALSE(parseTokens(d.args, {"--help"}));
  EXPECT_FALSE(d.args.parseError()) << "--help exits 0";
}

TEST(BenchArgs, DashAloneRemainsAValidStringPositional) {
  // The benches' "skip the JSON dump" convention: a bare '-' must keep
  // binding as a positional value, not trip the flag-typo check.
  Declared d;
  EXPECT_TRUE(parseTokens(d.args, {"24", "1.5", "-"}));
  EXPECT_EQ(d.path, "-");
}

}  // namespace
}  // namespace adres::bench
