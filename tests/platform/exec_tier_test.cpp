// Exec-tier equivalence at the platform layer (DESIGN.md §14): a packet
// farm run at each ExecTier must produce bit- and cycle-exact outcomes,
// identical merged adres.counters.v1 totals and an identical
// adres.profile.v1 cycle-attribution partition — the tiers differ only in
// host speed.  Also pins that a tier/plan mismatch fails loudly at load.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "dsp/channel.hpp"
#include "platform/packet_farm.hpp"

namespace adres::platform {
namespace {

dsp::ModemConfig smallConfig() {
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = 2;
  return cfg;
}

std::array<std::vector<cint16>, 2> makeWave(const dsp::ModemConfig& cfg,
                                            int index) {
  Rng rng(100 + static_cast<u64>(index));
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  cc.seed = static_cast<u64>(index + 1);
  dsp::MimoChannel ch(cc);
  return ch.run(pkt.waveform);
}

struct TierRun {
  std::vector<RxOutcome> outs;
  FarmStats stats;
  std::string profileJson;
};

TierRun runFarmAt(ExecTier tier,
                  const std::vector<std::array<std::vector<cint16>, 2>>& waves) {
  FarmConfig fc;
  fc.modem = smallConfig();
  fc.numWorkers = 2;
  fc.ordered = true;
  fc.kernelProfile = true;
  fc.run.exec.tier = tier;
  PacketFarm farm(fc);
  for (const auto& rx : waves) (void)farm.submit(rx);
  TierRun r;
  r.outs = farm.finish();
  r.stats = farm.stats();
  std::ostringstream os;
  r.stats.profile.writeJson(os);
  r.profileJson = os.str();
  return r;
}

TEST(ExecTierFarm, AllTiersAreBitAndCycleExact) {
  const dsp::ModemConfig cfg = smallConfig();
  std::vector<std::array<std::vector<cint16>, 2>> waves;
  for (int i = 0; i < 4; ++i) waves.push_back(makeWave(cfg, i));

  const TierRun ref = runFarmAt(ExecTier::kReference, waves);
  const TierRun interp = runFarmAt(ExecTier::kInterpreted, waves);
  const TierRun native = runFarmAt(ExecTier::kNative, waves);

  ASSERT_EQ(ref.outs.size(), waves.size());
  for (const TierRun* other : {&interp, &native}) {
    ASSERT_EQ(other->outs.size(), ref.outs.size());
    for (std::size_t i = 0; i < ref.outs.size(); ++i) {
      const RxOutcome& a = ref.outs[i];
      const RxOutcome& b = other->outs[i];
      SCOPED_TRACE("packet " + std::to_string(i));
      EXPECT_TRUE(b.result.halted());
      EXPECT_EQ(a.result.detected, b.result.detected);
      EXPECT_EQ(a.result.ltfStart, b.result.ltfStart);
      EXPECT_EQ(a.result.bits, b.result.bits);
      EXPECT_EQ(a.result.cycles, b.result.cycles);
    }
    // Merged adres.counters.v1 totals (activity, memory, RF, icache,
    // config-memory stats across every worker) are identical.
    EXPECT_EQ(ref.stats.counters, other->stats.counters);
    EXPECT_EQ(ref.stats.groups, other->stats.groups);
    // The adres.profile.v1 cycle-attribution partition — per-region and
    // per-(region, kernel) issue/idle/stall/overhead splits — is identical
    // down to the serialized document.
    EXPECT_EQ(ref.profileJson, other->profileJson);
  }
}

TEST(ExecTierFarm, MismatchedPolicyTierFailsLoudlyAtLoad) {
  const dsp::ModemConfig cfg = smallConfig();
  const auto modem = modemProgramFor(cfg);
  Processor proc;
  ExecPolicy pol;
  pol.tier = ExecTier::kNative;
  pol.plans = modem->plansFor(ExecTier::kInterpreted);
  EXPECT_THROW(proc.load(modem->program, pol), SimError);
}

}  // namespace
}  // namespace adres::platform
