// Packet farm: program-build cache identity, N-worker bit-exactness vs the
// sequential baseline (bits, cycles, merged counters), lossless
// close-then-drain shutdown, and live telemetry (mid-flight HTTP scrapes
// must not perturb decoded output).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "dsp/channel.hpp"
#include "obs/metrics_server.hpp"
#include "platform/packet_farm.hpp"

namespace adres::platform {
namespace {

dsp::ModemConfig smallConfig() {
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = 2;
  return cfg;
}

/// A decodable packet through a clean per-index channel (error-free at
/// 40 dB so decoded bits must equal the transmitted payload exactly);
/// returns waveforms and golden payload bits.
std::pair<std::array<std::vector<cint16>, 2>, std::vector<u8>> makePacket(
    const dsp::ModemConfig& cfg, int index) {
  Rng rng(100 + static_cast<u64>(index));
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  cc.seed = static_cast<u64>(index + 1);
  dsp::MimoChannel ch(cc);
  return {ch.run(pkt.waveform), pkt.bits};
}

TEST(RxSessionCache, IdenticalConfigsShareOneMappedProgram) {
  const dsp::ModemConfig cfg = smallConfig();
  const auto a = modemProgramFor(cfg);
  const auto b = modemProgramFor(cfg);
  EXPECT_EQ(a.get(), b.get()) << "same config must reuse the mapped program";

  dsp::ModemConfig other = cfg;
  other.numSymbols = 4;
  const auto c = modemProgramFor(other);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(c->numSymbols, 4);
  EXPECT_EQ(a->config.numSymbols, cfg.numSymbols);
}

TEST(RxSession, AccumulatesStatsAcrossPackets) {
  const dsp::ModemConfig cfg = smallConfig();
  const auto [rx, bits] = makePacket(cfg, 0);
  RxSession session(cfg);
  const auto r1 = session.decode(rx);
  const auto r2 = session.decode(rx);
  EXPECT_TRUE(r1.halted());
  EXPECT_EQ(r1.bits, r2.bits) << "session reuse is deterministic";
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(session.stats().packets, 2u);
  EXPECT_EQ(session.stats().counters.at("core.cycles"), r1.cycles + r2.cycles);
}

TEST(PacketFarm, OrderedNWorkerRunIsBitExactWithSequentialBaseline) {
  const dsp::ModemConfig cfg = smallConfig();
  constexpr int kPackets = 6;
  std::vector<std::array<std::vector<cint16>, 2>> waves;
  std::vector<std::vector<u8>> golden;
  for (int i = 0; i < kPackets; ++i) {
    auto [rx, bits] = makePacket(cfg, i);
    waves.push_back(std::move(rx));
    golden.push_back(std::move(bits));
  }

  // Sequential baseline: one session, packets in submit order.
  RxSession seq(cfg);
  std::vector<sdr::ProcessorRxResult> base;
  for (const auto& rx : waves) base.push_back(seq.decode(rx));

  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 4;
  fc.queueCapacity = 4;
  fc.ordered = true;
  PacketFarm farm(fc);
  for (const auto& rx : waves) (void)farm.submit(rx);
  const std::vector<RxOutcome> outs = farm.finish();

  ASSERT_EQ(outs.size(), static_cast<std::size_t>(kPackets));
  for (int i = 0; i < kPackets; ++i) {
    const auto& o = outs[static_cast<std::size_t>(i)];
    const auto& b = base[static_cast<std::size_t>(i)];
    EXPECT_EQ(o.id, static_cast<u64>(i)) << "ordered mode sorts by job id";
    EXPECT_TRUE(o.result.halted());
    EXPECT_EQ(o.result.detected, b.detected);
    EXPECT_EQ(o.result.ltfStart, b.ltfStart);
    EXPECT_EQ(o.result.bits, b.bits) << "packet " << i;
    EXPECT_EQ(o.result.cycles, b.cycles) << "packet " << i;
    EXPECT_EQ(o.result.bits, golden[static_cast<std::size_t>(i)])
        << "decode matches the transmitted payload";
  }

  // Counter sums merged across workers equal the sequential totals.
  const FarmStats& fs = farm.stats();
  EXPECT_EQ(fs.workers, 4);
  EXPECT_EQ(fs.packets, static_cast<u64>(kPackets));
  EXPECT_EQ(fs.counters, seq.stats().counters);
  EXPECT_EQ(fs.groups, seq.stats().groups);

  // The aggregate dump carries the schema and the workers extension field.
  std::ostringstream os;
  fs.writeJson(os);
  EXPECT_NE(os.str().find("\"schema\": \"adres.counters.v1\""), std::string::npos);
  EXPECT_NE(os.str().find("\"workers\": 4"), std::string::npos);
}

TEST(PacketFarm, CollectSupportsRepeatedBatchesOnOneFarm) {
  const dsp::ModemConfig cfg = smallConfig();
  const auto [rx, bits] = makePacket(cfg, 0);

  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 2;
  fc.queueCapacity = 2;
  fc.ordered = true;
  PacketFarm farm(fc);

  // Two submit/collect rounds on the same workers (the campaign batch
  // pattern), then a final finish() that must return nothing new.
  for (int round = 0; round < 2; ++round) {
    const int kBatch = 3;
    for (int i = 0; i < kBatch; ++i) {
      RxJob job;
      job.id = static_cast<u64>(round * 100 + i);
      job.rx = rx;
      farm.submit(std::move(job));
    }
    const std::vector<RxOutcome> outs = farm.collect();
    ASSERT_EQ(outs.size(), static_cast<std::size_t>(kBatch)) << "round " << round;
    for (int i = 0; i < kBatch; ++i) {
      EXPECT_EQ(outs[static_cast<std::size_t>(i)].id,
                static_cast<u64>(round * 100 + i))
          << "ordered collect sorts by id";
      EXPECT_EQ(outs[static_cast<std::size_t>(i)].result.bits, bits);
    }
  }
  EXPECT_TRUE(farm.collect().empty()) << "collect with nothing pending";
  EXPECT_TRUE(farm.finish().empty()) << "everything was already collected";
  EXPECT_EQ(farm.stats().packets, 6u);
}

TEST(PacketFarm, ShutdownDrainsQueueWithoutLosingJobs) {
  const dsp::ModemConfig cfg = smallConfig();
  const auto [rx, bits] = makePacket(cfg, 0);
  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 2;
  fc.queueCapacity = 2;  // most jobs wait in (or for) the queue at finish()
  fc.ordered = false;
  PacketFarm farm(fc);
  constexpr int kJobs = 10;
  for (int i = 0; i < kJobs; ++i) (void)farm.submit(rx);
  const std::vector<RxOutcome> outs = farm.finish();

  ASSERT_EQ(outs.size(), static_cast<std::size_t>(kJobs))
      << "close-then-drain must decode every accepted job";
  std::set<u64> ids;
  for (const auto& o : outs) {
    ids.insert(o.id);
    EXPECT_EQ(o.result.bits, outs.front().result.bits)
        << "identical waveforms decode identically on any worker";
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kJobs)) << "no duplicates";
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), static_cast<u64>(kJobs - 1));

  EXPECT_TRUE(farm.finish().empty()) << "finish() is idempotent";
}

TEST(PacketFarm, LiveMetricsScrapeIsBitExactAndExposesFarmSeries) {
  const dsp::ModemConfig cfg = smallConfig();
  constexpr int kPackets = 6;
  std::vector<std::array<std::vector<cint16>, 2>> waves;
  for (int i = 0; i < kPackets; ++i)
    waves.push_back(makePacket(cfg, i).first);

  // Baseline: same farm shape, no metrics attached.
  std::vector<RxOutcome> base;
  {
    FarmConfig fc;
    fc.modem = cfg;
    fc.numWorkers = 3;
    PacketFarm farm(fc);
    for (const auto& rx : waves) (void)farm.submit(rx);
    base = farm.finish();
  }

  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 3;
  fc.watchdog.pollMs = 2;  // aggressive supervision while we scrape
  obs::MetricsRegistry reg;
  PacketFarm farm(fc);
  farm.registerMetrics(reg);
  obs::MetricsServer server(reg, 0);

  // Scrape over real HTTP between submissions — mid-flight observation.
  int scrapes = 0;
  for (const auto& rx : waves) {
    (void)farm.submit(rx);
    const std::string text = obs::httpGet("127.0.0.1", server.port(), "/metrics");
    if (!text.empty()) ++scrapes;
  }
  const std::vector<RxOutcome> outs = farm.finish();
  EXPECT_GT(scrapes, 0) << "at least one live scrape succeeded";

  ASSERT_EQ(outs.size(), base.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    EXPECT_EQ(outs[i].result.bits, base[i].result.bits) << "packet " << i;
    EXPECT_EQ(outs[i].result.cycles, base[i].result.cycles)
        << "supervised slicing + scraping must stay cycle-exact, packet " << i;
  }

  // Post-run exposition carries the acceptance series: farm counters, queue
  // depth, latency quantiles, and the sim-counter family.
  const std::string text = obs::httpGet("127.0.0.1", server.port(), "/metrics");
  EXPECT_NE(text.find("adres_farm_packets_done_total 6\n"), std::string::npos);
  EXPECT_NE(text.find("adres_farm_packets_submitted_total 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("adres_farm_queue_depth 0\n"), std::string::npos);
  EXPECT_NE(text.find("adres_farm_latency_host_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("adres_farm_packet_cycles{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("adres_farm_worker_packets_total{worker=\"2\"}"),
            std::string::npos);
  EXPECT_NE(text.find("adres_sim_counter{name=\"core.cycles\"}"),
            std::string::npos)
      << "published session counters reach the live endpoint";

  // The merged live histogram equals the post-run merge.
  EXPECT_EQ(farm.latencySnapshot().count, static_cast<u64>(kPackets));
  EXPECT_EQ(farm.stats().packetCycles.count, static_cast<u64>(kPackets));

  server.stop();
  reg.clear();  // teardown barrier before the farm dies
}

}  // namespace
}  // namespace adres::platform
