// Packet farm: program-build cache identity, N-worker bit-exactness vs the
// sequential baseline (bits, cycles, merged counters), and lossless
// close-then-drain shutdown.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "dsp/channel.hpp"
#include "platform/packet_farm.hpp"

namespace adres::platform {
namespace {

dsp::ModemConfig smallConfig() {
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = 2;
  return cfg;
}

/// A decodable packet through a clean per-index channel (error-free at
/// 40 dB so decoded bits must equal the transmitted payload exactly);
/// returns waveforms and golden payload bits.
std::pair<std::array<std::vector<cint16>, 2>, std::vector<u8>> makePacket(
    const dsp::ModemConfig& cfg, int index) {
  Rng rng(100 + static_cast<u64>(index));
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  cc.seed = static_cast<u64>(index + 1);
  dsp::MimoChannel ch(cc);
  return {ch.run(pkt.waveform), pkt.bits};
}

TEST(RxSessionCache, IdenticalConfigsShareOneMappedProgram) {
  const dsp::ModemConfig cfg = smallConfig();
  const auto a = modemProgramFor(cfg);
  const auto b = modemProgramFor(cfg);
  EXPECT_EQ(a.get(), b.get()) << "same config must reuse the mapped program";

  dsp::ModemConfig other = cfg;
  other.numSymbols = 4;
  const auto c = modemProgramFor(other);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(c->numSymbols, 4);
  EXPECT_EQ(a->config.numSymbols, cfg.numSymbols);
}

TEST(RxSession, AccumulatesStatsAcrossPackets) {
  const dsp::ModemConfig cfg = smallConfig();
  const auto [rx, bits] = makePacket(cfg, 0);
  RxSession session(cfg);
  const auto r1 = session.decode(rx);
  const auto r2 = session.decode(rx);
  EXPECT_TRUE(r1.halted());
  EXPECT_EQ(r1.bits, r2.bits) << "session reuse is deterministic";
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(session.stats().packets, 2u);
  EXPECT_EQ(session.stats().counters.at("core.cycles"), r1.cycles + r2.cycles);
}

TEST(PacketFarm, OrderedNWorkerRunIsBitExactWithSequentialBaseline) {
  const dsp::ModemConfig cfg = smallConfig();
  constexpr int kPackets = 6;
  std::vector<std::array<std::vector<cint16>, 2>> waves;
  std::vector<std::vector<u8>> golden;
  for (int i = 0; i < kPackets; ++i) {
    auto [rx, bits] = makePacket(cfg, i);
    waves.push_back(std::move(rx));
    golden.push_back(std::move(bits));
  }

  // Sequential baseline: one session, packets in submit order.
  RxSession seq(cfg);
  std::vector<sdr::ProcessorRxResult> base;
  for (const auto& rx : waves) base.push_back(seq.decode(rx));

  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 4;
  fc.queueCapacity = 4;
  fc.ordered = true;
  PacketFarm farm(fc);
  for (const auto& rx : waves) (void)farm.submit(rx);
  const std::vector<RxOutcome> outs = farm.finish();

  ASSERT_EQ(outs.size(), static_cast<std::size_t>(kPackets));
  for (int i = 0; i < kPackets; ++i) {
    const auto& o = outs[static_cast<std::size_t>(i)];
    const auto& b = base[static_cast<std::size_t>(i)];
    EXPECT_EQ(o.id, static_cast<u64>(i)) << "ordered mode sorts by job id";
    EXPECT_TRUE(o.result.halted());
    EXPECT_EQ(o.result.detected, b.detected);
    EXPECT_EQ(o.result.ltfStart, b.ltfStart);
    EXPECT_EQ(o.result.bits, b.bits) << "packet " << i;
    EXPECT_EQ(o.result.cycles, b.cycles) << "packet " << i;
    EXPECT_EQ(o.result.bits, golden[static_cast<std::size_t>(i)])
        << "decode matches the transmitted payload";
  }

  // Counter sums merged across workers equal the sequential totals.
  const FarmStats& fs = farm.stats();
  EXPECT_EQ(fs.workers, 4);
  EXPECT_EQ(fs.packets, static_cast<u64>(kPackets));
  EXPECT_EQ(fs.counters, seq.stats().counters);
  EXPECT_EQ(fs.groups, seq.stats().groups);

  // The aggregate dump carries the schema and the workers extension field.
  std::ostringstream os;
  fs.writeJson(os);
  EXPECT_NE(os.str().find("\"schema\": \"adres.counters.v1\""), std::string::npos);
  EXPECT_NE(os.str().find("\"workers\": 4"), std::string::npos);
}

TEST(PacketFarm, ShutdownDrainsQueueWithoutLosingJobs) {
  const dsp::ModemConfig cfg = smallConfig();
  const auto [rx, bits] = makePacket(cfg, 0);
  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 2;
  fc.queueCapacity = 2;  // most jobs wait in (or for) the queue at finish()
  fc.ordered = false;
  PacketFarm farm(fc);
  constexpr int kJobs = 10;
  for (int i = 0; i < kJobs; ++i) (void)farm.submit(rx);
  const std::vector<RxOutcome> outs = farm.finish();

  ASSERT_EQ(outs.size(), static_cast<std::size_t>(kJobs))
      << "close-then-drain must decode every accepted job";
  std::set<u64> ids;
  for (const auto& o : outs) {
    ids.insert(o.id);
    EXPECT_EQ(o.result.bits, outs.front().result.bits)
        << "identical waveforms decode identically on any worker";
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kJobs)) << "no duplicates";
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), static_cast<u64>(kJobs - 1));

  EXPECT_TRUE(farm.finish().empty()) << "finish() is idempotent";
}

}  // namespace
}  // namespace adres::platform
