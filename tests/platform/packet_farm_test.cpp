// Packet farm: program-build cache identity, N-worker bit-exactness vs the
// sequential baseline (bits, cycles, merged counters), lossless
// close-then-drain shutdown, and live telemetry (mid-flight HTTP scrapes
// must not perturb decoded output).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "common/json_min.hpp"
#include "dsp/channel.hpp"
#include "obs/metrics_server.hpp"
#include "platform/packet_farm.hpp"

namespace adres::platform {
namespace {

dsp::ModemConfig smallConfig() {
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = 2;
  return cfg;
}

/// A decodable packet through a clean per-index channel (error-free at
/// 40 dB so decoded bits must equal the transmitted payload exactly);
/// returns waveforms and golden payload bits.
std::pair<std::array<std::vector<cint16>, 2>, std::vector<u8>> makePacket(
    const dsp::ModemConfig& cfg, int index) {
  Rng rng(100 + static_cast<u64>(index));
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  cc.seed = static_cast<u64>(index + 1);
  dsp::MimoChannel ch(cc);
  return {ch.run(pkt.waveform), pkt.bits};
}

TEST(RxSessionCache, IdenticalConfigsShareOneMappedProgram) {
  const dsp::ModemConfig cfg = smallConfig();
  const auto a = modemProgramFor(cfg);
  const auto b = modemProgramFor(cfg);
  EXPECT_EQ(a.get(), b.get()) << "same config must reuse the mapped program";

  dsp::ModemConfig other = cfg;
  other.numSymbols = 4;
  const auto c = modemProgramFor(other);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(c->numSymbols, 4);
  EXPECT_EQ(a->config.numSymbols, cfg.numSymbols);
}

TEST(RxSession, AccumulatesStatsAcrossPackets) {
  const dsp::ModemConfig cfg = smallConfig();
  const auto [rx, bits] = makePacket(cfg, 0);
  RxSession session(cfg);
  const auto r1 = session.decode(rx);
  const auto r2 = session.decode(rx);
  EXPECT_TRUE(r1.halted());
  EXPECT_EQ(r1.bits, r2.bits) << "session reuse is deterministic";
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(session.stats().packets, 2u);
  EXPECT_EQ(session.stats().counters.at("core.cycles"), r1.cycles + r2.cycles);
}

TEST(PacketFarm, OrderedNWorkerRunIsBitExactWithSequentialBaseline) {
  const dsp::ModemConfig cfg = smallConfig();
  constexpr int kPackets = 6;
  std::vector<std::array<std::vector<cint16>, 2>> waves;
  std::vector<std::vector<u8>> golden;
  for (int i = 0; i < kPackets; ++i) {
    auto [rx, bits] = makePacket(cfg, i);
    waves.push_back(std::move(rx));
    golden.push_back(std::move(bits));
  }

  // Sequential baseline: one session, packets in submit order.
  RxSession seq(cfg);
  std::vector<sdr::ProcessorRxResult> base;
  for (const auto& rx : waves) base.push_back(seq.decode(rx));

  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 4;
  fc.queueCapacity = 4;
  fc.ordered = true;
  PacketFarm farm(fc);
  for (const auto& rx : waves) (void)farm.submit(rx);
  const std::vector<RxOutcome> outs = farm.finish();

  ASSERT_EQ(outs.size(), static_cast<std::size_t>(kPackets));
  for (int i = 0; i < kPackets; ++i) {
    const auto& o = outs[static_cast<std::size_t>(i)];
    const auto& b = base[static_cast<std::size_t>(i)];
    EXPECT_EQ(o.id, static_cast<u64>(i)) << "ordered mode sorts by job id";
    EXPECT_TRUE(o.result.halted());
    EXPECT_EQ(o.result.detected, b.detected);
    EXPECT_EQ(o.result.ltfStart, b.ltfStart);
    EXPECT_EQ(o.result.bits, b.bits) << "packet " << i;
    EXPECT_EQ(o.result.cycles, b.cycles) << "packet " << i;
    EXPECT_EQ(o.result.bits, golden[static_cast<std::size_t>(i)])
        << "decode matches the transmitted payload";
  }

  // Counter sums merged across workers equal the sequential totals.
  const FarmStats& fs = farm.stats();
  EXPECT_EQ(fs.workers, 4);
  EXPECT_EQ(fs.packets, static_cast<u64>(kPackets));
  EXPECT_EQ(fs.counters, seq.stats().counters);
  EXPECT_EQ(fs.groups, seq.stats().groups);

  // The aggregate dump carries the schema and the workers extension field.
  std::ostringstream os;
  fs.writeJson(os);
  EXPECT_NE(os.str().find("\"schema\": \"adres.counters.v1\""), std::string::npos);
  EXPECT_NE(os.str().find("\"workers\": 4"), std::string::npos);
}

TEST(PacketFarm, CollectSupportsRepeatedBatchesOnOneFarm) {
  const dsp::ModemConfig cfg = smallConfig();
  const auto [rx, bits] = makePacket(cfg, 0);

  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 2;
  fc.queueCapacity = 2;
  fc.ordered = true;
  PacketFarm farm(fc);

  // Two submit/collect rounds on the same workers (the campaign batch
  // pattern), then a final finish() that must return nothing new.
  for (int round = 0; round < 2; ++round) {
    const int kBatch = 3;
    for (int i = 0; i < kBatch; ++i) {
      RxJob job;
      job.id = static_cast<u64>(round * 100 + i);
      job.rx = rx;
      farm.submit(std::move(job));
    }
    const std::vector<RxOutcome> outs = farm.collect();
    ASSERT_EQ(outs.size(), static_cast<std::size_t>(kBatch)) << "round " << round;
    for (int i = 0; i < kBatch; ++i) {
      EXPECT_EQ(outs[static_cast<std::size_t>(i)].id,
                static_cast<u64>(round * 100 + i))
          << "ordered collect sorts by id";
      EXPECT_EQ(outs[static_cast<std::size_t>(i)].result.bits, bits);
    }
  }
  EXPECT_TRUE(farm.collect().empty()) << "collect with nothing pending";
  EXPECT_TRUE(farm.finish().empty()) << "everything was already collected";
  EXPECT_EQ(farm.stats().packets, 6u);
}

TEST(PacketFarm, ShutdownDrainsQueueWithoutLosingJobs) {
  const dsp::ModemConfig cfg = smallConfig();
  const auto [rx, bits] = makePacket(cfg, 0);
  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 2;
  fc.queueCapacity = 2;  // most jobs wait in (or for) the queue at finish()
  fc.ordered = false;
  PacketFarm farm(fc);
  constexpr int kJobs = 10;
  for (int i = 0; i < kJobs; ++i) (void)farm.submit(rx);
  const std::vector<RxOutcome> outs = farm.finish();

  ASSERT_EQ(outs.size(), static_cast<std::size_t>(kJobs))
      << "close-then-drain must decode every accepted job";
  std::set<u64> ids;
  for (const auto& o : outs) {
    ids.insert(o.id);
    EXPECT_EQ(o.result.bits, outs.front().result.bits)
        << "identical waveforms decode identically on any worker";
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kJobs)) << "no duplicates";
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), static_cast<u64>(kJobs - 1));

  EXPECT_TRUE(farm.finish().empty()) << "finish() is idempotent";
}

TEST(PacketFarm, LiveMetricsScrapeIsBitExactAndExposesFarmSeries) {
  const dsp::ModemConfig cfg = smallConfig();
  constexpr int kPackets = 6;
  std::vector<std::array<std::vector<cint16>, 2>> waves;
  for (int i = 0; i < kPackets; ++i)
    waves.push_back(makePacket(cfg, i).first);

  // Baseline: same farm shape, no metrics attached.
  std::vector<RxOutcome> base;
  {
    FarmConfig fc;
    fc.modem = cfg;
    fc.numWorkers = 3;
    PacketFarm farm(fc);
    for (const auto& rx : waves) (void)farm.submit(rx);
    base = farm.finish();
  }

  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 3;
  fc.watchdog.pollMs = 2;  // aggressive supervision while we scrape
  obs::MetricsRegistry reg;
  PacketFarm farm(fc);
  farm.registerMetrics(reg);
  obs::MetricsServer server(reg, 0);

  // Scrape over real HTTP between submissions — mid-flight observation.
  int scrapes = 0;
  for (const auto& rx : waves) {
    (void)farm.submit(rx);
    const std::string text = obs::httpGet("127.0.0.1", server.port(), "/metrics");
    if (!text.empty()) ++scrapes;
  }
  const std::vector<RxOutcome> outs = farm.finish();
  EXPECT_GT(scrapes, 0) << "at least one live scrape succeeded";

  ASSERT_EQ(outs.size(), base.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    EXPECT_EQ(outs[i].result.bits, base[i].result.bits) << "packet " << i;
    EXPECT_EQ(outs[i].result.cycles, base[i].result.cycles)
        << "supervised slicing + scraping must stay cycle-exact, packet " << i;
  }

  // Post-run exposition carries the acceptance series: farm counters, queue
  // depth, latency quantiles, and the sim-counter family.
  const std::string text = obs::httpGet("127.0.0.1", server.port(), "/metrics");
  EXPECT_NE(text.find("adres_farm_packets_done_total 6\n"), std::string::npos);
  EXPECT_NE(text.find("adres_farm_packets_submitted_total 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("adres_farm_queue_depth 0\n"), std::string::npos);
  EXPECT_NE(text.find("adres_farm_latency_host_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("adres_farm_packet_cycles{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("adres_farm_worker_packets_total{worker=\"2\"}"),
            std::string::npos);
  EXPECT_NE(text.find("adres_sim_counter{name=\"core.cycles\"}"),
            std::string::npos)
      << "published session counters reach the live endpoint";

  // The merged live histogram equals the post-run merge.
  EXPECT_EQ(farm.latencySnapshot().count, static_cast<u64>(kPackets));
  EXPECT_EQ(farm.stats().packetCycles.count, static_cast<u64>(kPackets));

  server.stop();
  reg.clear();  // teardown barrier before the farm dies
}

TEST(PacketFarm, DeepObservabilityKeepsDecodesBitAndCycleExact) {
  // Spans + kernel profiling + exemplar capture all enabled at once against
  // a plain farm: observation must not change a single bit or cycle, and
  // every observability product (span trees, merged profile, exemplar
  // files, exemplar'd Prometheus histogram) must materialize.
  const dsp::ModemConfig cfg = smallConfig();
  constexpr int kPackets = 8;
  std::vector<std::array<std::vector<cint16>, 2>> waves;
  for (int i = 0; i < kPackets; ++i) waves.push_back(makePacket(cfg, i).first);

  std::vector<RxOutcome> base;
  {
    FarmConfig fc;
    fc.modem = cfg;
    fc.numWorkers = 3;
    PacketFarm farm(fc);
    for (const auto& rx : waves) (void)farm.submit(rx);
    base = farm.finish();
  }

  const std::string dir = "packet_farm_test_exemplars";
  std::filesystem::remove_all(dir);
  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 3;
  fc.spans = true;
  fc.kernelProfile = true;
  fc.exemplars.enabled = true;
  fc.exemplars.dir = dir;
  fc.exemplars.quantile = 0.0;  // arm on the first sample: capture the tail
  fc.exemplars.minCount = 1;    // of everything, deterministically non-empty
  fc.exemplars.maxExemplars = 4;
  fc.exemplars.ringCapacity = 512;
  obs::MetricsRegistry reg;
  PacketFarm farm(fc);
  farm.registerMetrics(reg);
  for (const auto& rx : waves) (void)farm.submit(rx);
  const std::vector<RxOutcome> outs = farm.finish();

  ASSERT_EQ(outs.size(), base.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const RxOutcome& o = outs[i];
    EXPECT_EQ(o.result.bits, base[i].result.bits) << "packet " << i;
    EXPECT_EQ(o.result.cycles, base[i].result.cycles)
        << "observability must not move a cycle, packet " << i;
    EXPECT_EQ(o.traceId, trace::packetTraceId(o.id, 0));
    EXPECT_NE(o.traceId, 0u);
    EXPECT_GE(o.queueWaitUs, 0.0);
    // The span tree is attached and internally consistent.
    ASSERT_FALSE(o.spans.empty()) << "packet " << i;
    EXPECT_EQ(o.spans.traceId, o.traceId);
    EXPECT_EQ(o.spans.jobId, o.id);
    const trace::Span* decode = o.spans.find(trace::SpanKind::kDecode);
    ASSERT_NE(decode, nullptr);
    EXPECT_EQ(decode->cycles, o.result.cycles);
    EXPECT_NEAR(o.spans.queueWaitUs(), o.queueWaitUs, 1e-9);
    u64 regionChildren = 0, regionCycles = 0;
    for (const trace::Span& s : o.spans.spans) {
      if (s.kind != trace::SpanKind::kRegion) continue;
      ++regionChildren;
      regionCycles += s.cycles;
      EXPECT_FALSE(s.name.empty());
    }
    EXPECT_GT(regionChildren, 4u) << "one child per modem region entered";
    EXPECT_LE(regionCycles, o.result.cycles);
  }

  // Merged cycle-attribution profile: one fold per packet, partition exact.
  const trace::ProfileSummary& prof = farm.stats().profile;
  EXPECT_EQ(prof.runs, static_cast<u64>(kPackets));
  EXPECT_GT(prof.totalCycles, 0u);
  ASSERT_FALSE(prof.kernels.empty());
  for (const auto& [key, kr] : prof.kernels) {
    EXPECT_EQ(kr.cycles, kr.issueCycles + kr.idleCycles + kr.stallCycles +
                             kr.overheadCycles)
        << key.first << "/" << key.second;
  }
  EXPECT_EQ(farm.stats().queueWaitNs.count, static_cast<u64>(kPackets));

  // Exemplar store: captured at least the first-armed packet, records are
  // slowest-first, and every record's file is a parseable adres.exemplar.v1
  // document matching its index entry.
  const obs::ExemplarStore* store = farm.exemplarStore();
  ASSERT_NE(store, nullptr);
  EXPECT_GE(store->captured(), 1u);
  const std::vector<obs::ExemplarRecord> recs = store->records();
  ASSERT_FALSE(recs.empty());
  ASSERT_LE(recs.size(), fc.exemplars.maxExemplars);
  for (std::size_t i = 1; i < recs.size(); ++i)
    EXPECT_GE(recs[i - 1].latencyUs, recs[i].latencyUs) << "slowest first";
  for (const obs::ExemplarRecord& r : recs) {
    std::ifstream in(r.path);
    ASSERT_TRUE(in.good()) << r.path;
    std::stringstream body;
    body << in.rdbuf();
    const json::JsonValue root = json::JsonParser(body.str()).parse();
    EXPECT_EQ(root.at("schema").str, "adres.exemplar.v1");
    EXPECT_EQ(root.at("trace_id").str, trace::traceIdHex(r.traceId));
    EXPECT_EQ(root.at("job_id").number, static_cast<double>(r.jobId));
    EXPECT_FALSE(root.at("spans").array.empty());
    EXPECT_GT(root.at("ring").at("accepted").number, 0.0)
        << "flight recorder saw the decode";
  }

  // Live slowest-packet view carries its span tree.
  const PacketFarm::SlowestPacket slow = farm.slowestPacket();
  EXPECT_GT(slow.latencyUs, 0.0);
  EXPECT_NE(slow.traceId, 0u);
  EXPECT_FALSE(slow.spans.empty());

  // Prometheus exposition: the latency histogram renders buckets with an
  // OpenMetrics trace-id exemplar, and the capture counter is live.
  std::ostringstream os;
  reg.writePrometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE adres_farm_decode_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("adres_farm_decode_latency_us_bucket{le=\"+Inf\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("# {trace_id=\"" + trace::traceIdHex(recs[0].traceId) +
                      "\"}"),
            std::string::npos)
      << "slowest exemplar attached to a bucket";
  EXPECT_NE(text.find("adres_farm_exemplars_captured_total"),
            std::string::npos);
  EXPECT_NE(text.find("adres_farm_queue_wait_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("adres_farm_slowest_packet_region_cycles{region="),
            std::string::npos);

  reg.clear();  // teardown barrier before the farm dies
  std::filesystem::remove_all(dir);
}

TEST(RxSession, WarmReloadIsBitAndCycleExactWithColdReload) {
  const dsp::ModemConfig cfg = smallConfig();
  RxSession warm(cfg);  // default: warm reload from the second decode on
  sdr::RxRunOptions coldOpts;
  coldOpts.coldReload = true;
  RxSession cold(cfg, coldOpts);

  for (int i = 0; i < 3; ++i) {
    const auto [rx, bits] = makePacket(cfg, i);
    const auto w = warm.decode(rx);
    const auto c = cold.decode(rx);
    EXPECT_EQ(w.bits, bits) << "packet " << i;
    EXPECT_EQ(w.bits, c.bits) << "packet " << i;
    EXPECT_EQ(w.cycles, c.cycles) << "packet " << i;
    EXPECT_EQ(w.detected, c.detected);
    EXPECT_EQ(w.ltfStart, c.ltfStart);
  }
  // The whole counter set — not just cycles — must be reload-invariant.
  EXPECT_EQ(warm.stats().counters, cold.stats().counters);
  EXPECT_EQ(warm.stats().groups, cold.stats().groups);
}

TEST(PacketFarm, SubmittedPayloadsAreMovedNeverCopied) {
  const dsp::ModemConfig cfg = smallConfig();
  constexpr int kPackets = 6;

  // Record each submitted buffer's storage address; the pre-decode hook
  // (on the worker thread, after the queue hop) must observe the same
  // addresses — any copy along submit -> queue -> dispatch would fail this.
  std::mutex mu;
  std::map<u64, std::array<const cint16*, 2>> submitted, dispatched;

  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 2;
  fc.preDecodeHook = [&](int, const RxJob& job) {
    std::lock_guard<std::mutex> lk(mu);
    dispatched[job.id] = {job.rx[0].data(), job.rx[1].data()};
  };
  PacketFarm farm(fc);

  for (int i = 0; i < kPackets; ++i) {
    auto [rx, bits] = makePacket(cfg, i);
    RxJob job;
    job.id = static_cast<u64>(i);
    job.rx = std::move(rx);
    {
      std::lock_guard<std::mutex> lk(mu);
      submitted[job.id] = {job.rx[0].data(), job.rx[1].data()};
    }
    farm.submit(std::move(job));
  }
  const std::vector<RxOutcome> outs = farm.finish();
  ASSERT_EQ(outs.size(), static_cast<std::size_t>(kPackets));

  ASSERT_EQ(submitted.size(), dispatched.size());
  for (const auto& [id, ptrs] : submitted) {
    ASSERT_TRUE(dispatched.count(id)) << "job " << id;
    EXPECT_EQ(dispatched[id][0], ptrs[0]) << "rx[0] of job " << id
                                          << " was copied, not moved";
    EXPECT_EQ(dispatched[id][1], ptrs[1]) << "rx[1] of job " << id
                                          << " was copied, not moved";
  }
}

TEST(PacketFarm, CollectIntoAndRecycleFormClosedBufferLoops) {
  const dsp::ModemConfig cfg = smallConfig();
  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 1;
  PacketFarm farm(fc);

  const auto [rx, bits] = makePacket(cfg, 0);
  std::vector<RxOutcome> outs;
  std::set<const cint16*> waveStorage;  // round-0 waveform allocations
  const u8* bitStorage = nullptr;       // round-0 decoded-bit allocation
  for (int round = 0; round < 3; ++round) {
    RxJob job;
    job.id = static_cast<u64>(round);
    // Waveform storage comes from the pool: round 0 allocates, later
    // rounds must reuse the buffers the worker released after decoding
    // (the pool is LIFO, so the two antenna buffers may swap roles).
    job.rx[0] = farm.acquireSampleBuffer();
    job.rx[1] = farm.acquireSampleBuffer();
    job.rx[0].assign(rx[0].begin(), rx[0].end());
    job.rx[1].assign(rx[1].begin(), rx[1].end());
    if (round == 0) {
      waveStorage = {job.rx[0].data(), job.rx[1].data()};
    } else {
      EXPECT_TRUE(waveStorage.count(job.rx[0].data()) &&
                  waveStorage.count(job.rx[1].data()))
          << "round " << round << ": sample buffers must cycle via the pool";
    }
    farm.submit(std::move(job));

    farm.collectInto(outs);
    ASSERT_EQ(outs.size(), 1u) << "round " << round;
    EXPECT_EQ(outs[0].id, static_cast<u64>(round));
    EXPECT_EQ(outs[0].result.bits, bits) << "round " << round;
    if (round == 0) {
      bitStorage = outs[0].result.bits.data();
    } else {
      EXPECT_EQ(outs[0].result.bits.data(), bitStorage)
          << "round " << round << ": decoded bits must cycle via the pool";
    }
    farm.recycleOutcomes(outs);
    EXPECT_TRUE(outs.empty()) << "recycle clears the caller's view";
  }
  (void)farm.finish();
}

}  // namespace
}  // namespace adres::platform
