// BoundedQueue: FIFO semantics, backpressure blocking, close-then-drain
// shutdown and multi-producer/multi-consumer accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "platform/buffer_pool.hpp"
#include "platform/packet_queue.hpp"

namespace adres::platform {
namespace {

TEST(BoundedQueue, FifoSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.tryPush(1));
  EXPECT_TRUE(q.tryPush(2));
  EXPECT_FALSE(q.tryPush(3)) << "full queue must reject tryPush";
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.tryPush(3));
}

TEST(BoundedQueue, PushBlocksUntilSpaceFrees) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    ASSERT_TRUE(q.push(2));  // blocks: capacity 1, queue holds {1}
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed) << "push must block while the queue is full";
  EXPECT_EQ(q.pop().value(), 1);
  t.join();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseDrainsWithoutLosingItems) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  q.close();
  EXPECT_FALSE(q.push(99)) << "closed queue rejects pushes";
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value()) << "accepted items survive close()";
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.pop().has_value()) << "drained + closed -> end of stream";
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(2);
  std::thread t([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  t.join();
}

TEST(BoundedQueue, MultiProducerMultiConsumerAccountsEveryItem) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 250;
  BoundedQueue<int> q(8);  // small capacity: forces backpressure
  std::mutex mu;
  std::multiset<int> seen;
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        std::lock_guard<std::mutex> lk(mu);
        seen.insert(*v);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(p * kPerProducer + i));
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : threads) t.join();

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  for (int i = 0; i < kProducers * kPerProducer; ++i)
    EXPECT_EQ(seen.count(i), 1u) << "item " << i << " duplicated or lost";
}

TEST(BoundedQueue, FullWaitAccumulatesOnlyWhileBlocked) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  EXPECT_EQ(q.fullWaitNs(), 0u) << "uncontended pushes record no wait";

  std::thread t([&] { ASSERT_TRUE(q.push(2)); });  // blocks: queue full
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_EQ(q.pop().value(), 1);
  t.join();
  // The producer sat blocked ~25 ms; allow generous scheduling slack but
  // require the wait to be clearly non-zero and roughly of that order.
  EXPECT_GE(q.fullWaitNs(), 5'000'000u) << "blocked push must be timed";

  const u64 afterBlocked = q.fullWaitNs();
  EXPECT_EQ(q.pop().value(), 2);
  ASSERT_TRUE(q.push(3));
  EXPECT_EQ(q.fullWaitNs(), afterBlocked)
      << "non-blocking pushes must not touch the backpressure clock";
}

TEST(BufferPool, RecyclesReleasedStorage) {
  BufferPool<int> pool;
  EXPECT_EQ(pool.idle(), 0u);
  EXPECT_TRUE(pool.acquire().empty()) << "empty pool hands out a fresh buffer";

  std::vector<int> buf{1, 2, 3, 4};
  const int* storage = buf.data();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.idle(), 1u);

  const std::vector<int> again = pool.acquire();
  EXPECT_EQ(pool.idle(), 0u);
  EXPECT_TRUE(again.empty()) << "recycled buffers come back cleared";
  EXPECT_EQ(again.data(), storage) << "recycled buffer must reuse storage";
  EXPECT_GE(again.capacity(), 4u);

  pool.release(std::vector<int>{});  // capacity-0: nothing worth keeping
  EXPECT_EQ(pool.idle(), 0u);
}

}  // namespace
}  // namespace adres::platform
