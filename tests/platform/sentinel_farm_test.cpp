// End-to-end self-auditing runtime: a farm with seeded fault injection must
// be caught by the divergence sentinel (structured IntegrityEvent + a
// replayable adres.postmortem.v1 bundle whose divergence CONFIRMs under
// standalone re-execution), a clean farm at 100% sampling must audit every
// packet with zero divergences, and the readiness / capture / metrics
// surfaces must behave.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "dsp/channel.hpp"
#include "obs/metrics.hpp"
#include "platform/packet_farm.hpp"
#include "platform/replay.hpp"

namespace adres::platform {
namespace {

namespace fs = std::filesystem;

dsp::ModemConfig smallConfig() {
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = 2;
  return cfg;
}

/// A decodable packet through a clean per-index channel (error-free at
/// 40 dB); returns waveforms and golden payload bits.
std::pair<std::array<std::vector<cint16>, 2>, std::vector<u8>> makePacket(
    const dsp::ModemConfig& cfg, int index) {
  Rng rng(100 + static_cast<u64>(index));
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  cc.seed = static_cast<u64>(index + 1);
  dsp::MimoChannel ch(cc);
  return {ch.run(pkt.waveform), pkt.bits};
}

std::string freshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

TEST(SentinelFarm, CleanTrafficAtFullSamplingShowsZeroDivergences) {
  const dsp::ModemConfig cfg = smallConfig();
  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 2;
  fc.queueCapacity = 4;
  fc.ordered = true;
  fc.sentinel.enabled = true;
  fc.sentinel.sampleRate = 1.0;
  fc.sentinel.bundleOnDivergence = false;
  PacketFarm farm(fc);

  constexpr int kPackets = 4;
  std::vector<std::vector<u8>> golden;
  for (int i = 0; i < kPackets; ++i) {
    auto [rx, bits] = makePacket(cfg, i);
    golden.push_back(std::move(bits));
    (void)farm.submit(std::move(rx));
  }
  const std::vector<RxOutcome> outs = farm.finish();

  ASSERT_EQ(outs.size(), static_cast<std::size_t>(kPackets));
  for (int i = 0; i < kPackets; ++i) {
    EXPECT_TRUE(outs[static_cast<std::size_t>(i)].result.halted());
    EXPECT_EQ(outs[static_cast<std::size_t>(i)].result.bits,
              golden[static_cast<std::size_t>(i)])
        << "sentinel auditing must not perturb decoded output";
  }
  ASSERT_NE(farm.sentinel(), nullptr);
  EXPECT_EQ(farm.sentinel()->sampled(), static_cast<u64>(kPackets))
      << "sampleRate 1.0 audits every packet";
  EXPECT_EQ(farm.divergences(), 0u);
  EXPECT_TRUE(farm.integrityEvents().empty());
}

TEST(SentinelFarm, CatchesInjectedBitFlipsWithAReplayableBundle) {
  const dsp::ModemConfig cfg = smallConfig();
  const std::string dir = freshDir("adres_sentinel_fault");

  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 2;
  fc.queueCapacity = 4;
  fc.ordered = true;
  fc.run.faultInjectBitFlipSeed = 0xBADC0DEull;  // corrupt the primary path
  fc.sentinel.enabled = true;
  fc.sentinel.sampleRate = 1.0;
  fc.sentinel.bundleOnDivergence = true;
  fc.postmortem.dir = dir;
  PacketFarm farm(fc);

  constexpr int kPackets = 3;
  for (int i = 0; i < kPackets; ++i)
    (void)farm.submit(makePacket(cfg, i).first);
  const std::vector<RxOutcome> outs = farm.finish();
  ASSERT_EQ(outs.size(), static_cast<std::size_t>(kPackets));

  // The shadow decoder runs without the fault seed, so every audited packet
  // must surface as a bit divergence.
  const std::vector<obs::IntegrityEvent> events = farm.integrityEvents();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kPackets));
  EXPECT_EQ(farm.divergences(), static_cast<u64>(kPackets));
  for (const obs::IntegrityEvent& ev : events) {
    EXPECT_EQ(ev.kind, obs::IntegrityEvent::Kind::kBits);
    EXPECT_TRUE(ev.bitsDiverged);
    EXPECT_GT(ev.bitErrors, 0u);
    EXPECT_EQ(ev.shadowTier, "interpreted");
    ASSERT_FALSE(ev.bundlePath.empty());
    EXPECT_TRUE(fs::exists(ev.bundlePath));
  }
  ASSERT_NE(farm.postmortemWriter(), nullptr);
  EXPECT_EQ(farm.postmortemWriter()->written(), static_cast<u64>(kPackets));

  // The bundle is the incident, frozen: a standalone replay reproduces the
  // shadow's clean decode AND the fault-seeded corrupted primary.
  const obs::PostmortemBundle b = obs::loadPostmortemBundle(events[0].bundlePath);
  EXPECT_EQ(b.trigger, "divergence");
  EXPECT_EQ(b.faultInjectSeed, 0xBADC0DEull);
  EXPECT_TRUE(b.shadow.valid);
  EXPECT_NE(b.primary.bits, b.shadow.bits);
  const ReplayReport rep = replayPostmortem(b);
  EXPECT_TRUE(rep.matchesShadow);
  EXPECT_FALSE(rep.matchesPrimary);
  EXPECT_TRUE(rep.faultReproducesPrimary);
  EXPECT_TRUE(rep.consistent) << rep.verdict;
  EXPECT_NE(rep.verdict.find("CONFIRMED"), std::string::npos) << rep.verdict;
}

TEST(SentinelFarm, SloBreachCaptureFreezesTheSlowestPacket) {
  const dsp::ModemConfig cfg = smallConfig();
  const std::string dir = freshDir("adres_sentinel_capture");

  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 1;
  fc.ordered = true;
  fc.postmortem.enabled = true;
  fc.postmortem.dir = dir;
  PacketFarm farm(fc);

  // Nothing decoded yet: capture declines rather than writing a hollow file.
  EXPECT_EQ(farm.capturePostmortem("slo_breach", "premature"), "");

  for (int i = 0; i < 2; ++i) (void)farm.submit(makePacket(cfg, i).first);
  (void)farm.finish();

  const std::string path =
      farm.capturePostmortem("slo_breach", "p99 over budget");
  ASSERT_FALSE(path.empty());
  ASSERT_TRUE(fs::exists(path));
  const obs::PostmortemBundle b = obs::loadPostmortemBundle(path);
  EXPECT_EQ(b.trigger, "slo_breach");
  EXPECT_EQ(b.reason, "p99 over budget");
  EXPECT_FALSE(b.shadow.valid) << "an SLO capture has no shadow decode";
  ASSERT_FALSE(b.rx[0].empty());
  // No-shadow bundles must re-decode to the recorded primary exactly.
  const ReplayReport rep = replayPostmortem(b);
  EXPECT_TRUE(rep.matchesPrimary);
  EXPECT_TRUE(rep.consistent) << rep.verdict;
}

TEST(SentinelFarm, BecomesReadyOnceWorkersWarm) {
  FarmConfig fc;
  fc.modem = smallConfig();
  fc.numWorkers = 2;
  PacketFarm farm(fc);
  bool ready = false;
  for (int i = 0; i < 2000 && !ready; ++i) {
    ready = farm.ready();
    if (!ready) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(ready) << "workers must finish warming their sessions";
  std::string reason;
  EXPECT_TRUE(farm.ready(&reason));
  (void)farm.finish();
}

TEST(SentinelFarm, ExportsSentinelSeriesOnTheRegistry) {
  const dsp::ModemConfig cfg = smallConfig();
  FarmConfig fc;
  fc.modem = cfg;
  fc.numWorkers = 1;
  fc.sentinel.enabled = true;
  fc.sentinel.sampleRate = 1.0;
  fc.sentinel.bundleOnDivergence = false;
  PacketFarm farm(fc);
  obs::MetricsRegistry reg;
  farm.registerMetrics(reg);

  (void)farm.submit(makePacket(cfg, 0).first);
  (void)farm.finish();

  const obs::MetricsSnapshot snap = reg.snapshot();
  double sampled = -1, diverged = -1, readyGauge = -1;
  for (const obs::MetricSample& s : snap.samples) {
    if (s.name == "adres_farm_sentinel_sampled_total") sampled = s.value;
    if (s.name == "adres_farm_divergences_total") diverged = s.value;
    if (s.name == "adres_farm_ready") readyGauge = s.value;
  }
  reg.clear();
  EXPECT_EQ(sampled, 1.0);
  EXPECT_EQ(diverged, 0.0);
  EXPECT_EQ(readyGauge, 1.0);
}

}  // namespace
}  // namespace adres::platform
