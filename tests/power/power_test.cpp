// Power and area model tests.
#include <gtest/gtest.h>

#include "power/area_model.hpp"
#include "power/energy_model.hpp"
#include "sched/progbuilder.hpp"

namespace adres::power {
namespace {

TEST(Area, MatchesPaperTotalsAndShares) {
  const AreaReport r = analyzeArea();
  EXPECT_NEAR(r.totalMm2, 5.79, 0.01);
  EXPECT_NEAR(r.shares.at("memories (L1 + I$ + config)"), 0.50, 0.01);
  EXPECT_NEAR(r.shares.at("CGA FUs"), 0.29, 0.01);
  EXPECT_NEAR(r.shares.at("VLIW FUs"), 0.08, 0.01);
  EXPECT_NEAR(r.shares.at("global RF"), 0.05, 0.01);
  EXPECT_NEAR(r.shares.at("distributed RFs"), 0.03, 0.01);
}

TEST(Area, ScalesWithStructure) {
  AreaParams big;
  big.cgaFus = 32;
  const AreaReport base = analyzeArea();
  const AreaReport r = analyzeArea(big);
  EXPECT_NEAR(r.blocksMm2.at("CGA FUs"), 2 * base.blocksMm2.at("CGA FUs"),
              1e-9);
  EXPECT_GT(r.totalMm2, base.totalMm2);
}

TEST(Energy, CoefficientsReflectRfAsymmetry) {
  const auto c = EnergyCoefficients::defaultCalibration();
  EXPECT_LT(c.lrfAccessPj, c.cdrfAccessPj)
      << "local 2R/1W files must be cheaper per access";
  EXPECT_GT(c.configFetchPj, c.icacheAccessPj)
      << "ultra-wide context words cost more than one 128-bit line";
}

TEST(Energy, VliwOnlyProgramReportsVliwPowerOnly) {
  ProgramBuilder b("vliw_only");
  b.li(1, 0);
  for (int i = 0; i < 200; ++i) b.addi(1, 1, 1);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  const PowerReport r = analyze(p);
  EXPECT_GT(r.vliwActiveMw, 0.0);
  EXPECT_EQ(r.cgaCycles, 0u);
  EXPECT_NEAR(r.averageActiveMw, r.vliwActiveMw, 1e-9);
  // Dependent-chain ALU code lands in the single-to-tens of mW range.
  EXPECT_GT(r.vliwActiveMw, 5.0);
  EXPECT_LT(r.vliwActiveMw, 150.0);
}

TEST(Energy, KernelModeCostsMoreThanVliwMode) {
  // A dense CGA accumulator vs the same work as VLIW code.
  ProgramBuilder b("mix");
  KernelConfig k;
  k.name = "acc";
  k.ii = 1;
  k.schedLength = 1;
  k.contexts.resize(1);
  for (int fu = 0; fu < kCgaFus; ++fu) {
    FuOp& f = k.contexts[0].fu[fu];
    f.op = Opcode::C4ADD;
    f.src1 = SrcSel::localRf(0);
    f.src2 = SrcSel::localRf(1);
    f.dst.toLocalRf = true;
    f.dst.localAddr = 0;
  }
  const int kid = b.addKernel(k);
  b.li(1, 500);
  b.cga(kid, 1);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  const PowerReport r = analyze(p);
  EXPECT_GT(r.cgaActiveMw, r.vliwActiveMw)
      << "a saturated array burns more than scalar glue";
  EXPECT_GT(r.cgaActiveMw, 100.0) << "saturated array in the 100s of mW";
  EXPECT_LT(r.cgaActiveMw, 1000.0);
}

TEST(Energy, BreakdownsSumToOne) {
  ProgramBuilder b("sum1");
  b.li(1, 1);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  const PowerReport r = analyze(p);
  double s = 0;
  for (const auto& [k2, v] : r.vliwBreakdown) s += v;
  EXPECT_NEAR(s, 1.0, 1e-9);
}

}  // namespace
}  // namespace adres::power
