#include "regfile/regfiles.hpp"

#include <gtest/gtest.h>

namespace adres {
namespace {

TEST(Cdrf, ReadWriteAndStats) {
  CentralRegFile rf;
  rf.write(5, 0x123456789ABCDEFull);
  EXPECT_EQ(rf.read(5), 0x123456789ABCDEFull);
  EXPECT_EQ(rf.stats().reads, 1u);
  EXPECT_EQ(rf.stats().writes, 1u);
  EXPECT_THROW(rf.read(64), SimError);
  EXPECT_THROW(rf.write(-1, 0), SimError);
}

TEST(Cdrf, PredicateFile) {
  CentralRegFile rf;
  rf.writePred(3, true);
  EXPECT_TRUE(rf.readPred(3));
  EXPECT_FALSE(rf.readPred(4));
  EXPECT_EQ(rf.predStats().writes, 1u);
  EXPECT_THROW(rf.readPred(64), SimError);
}

TEST(Cdrf, PeekPokeBypassStats) {
  CentralRegFile rf;
  rf.poke(1, 42);
  EXPECT_EQ(rf.peek(1), 42u);
  EXPECT_EQ(rf.stats().reads, 0u);
  EXPECT_EQ(rf.stats().writes, 0u);
}

TEST(Cdrf, ClearZeroesEverything) {
  CentralRegFile rf;
  rf.poke(10, 7);
  rf.pokePred(2, true);
  rf.clear();
  EXPECT_EQ(rf.peek(10), 0u);
  EXPECT_FALSE(rf.peekPred(2));
}

TEST(LocalRf, SixteenEntries) {
  LocalRegFile rf;
  rf.write(15, 99);
  EXPECT_EQ(rf.read(15), 99u);
  EXPECT_THROW(rf.write(16, 0), SimError);
  EXPECT_EQ(rf.stats().reads, 1u);
}

}  // namespace
}  // namespace adres
