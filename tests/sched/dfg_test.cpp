// Kernel DFG builder and reference interpreter.
#include "sched/dfg.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace adres {
namespace {

using testutil::ScratchpadMem;

TEST(Dfg, BuilderProducesValidGraph) {
  KernelBuilder b("k");
  auto i = b.carried(1);
  auto base = b.liveIn(2);
  auto addr = b.op(Opcode::ADD, base, i);
  auto v = b.loadImm(Opcode::LD_I, addr, 0);
  auto v2 = b.opImm(Opcode::ADD, v, 1);
  b.storeImm(Opcode::ST_I, addr, 16, v2);
  auto inext = b.opImm(Opcode::ADD, i, 4);
  b.defineCarried(i, inext);
  b.liveOut(3, i);
  const KernelDfg g = b.build();
  EXPECT_EQ(g.opNodeCount(), 5);
  EXPECT_NO_THROW(g.validate());
}

TEST(Dfg, PhiWithoutDefinitionRejected) {
  KernelBuilder b("bad");
  auto i = b.carried(1);
  b.opImm(Opcode::ADD, i, 1);
  EXPECT_THROW(b.build(), SimError);
}

TEST(Dfg, InterpreterRunsAccumulator) {
  KernelBuilder b("acc");
  auto acc = b.carried(1);
  auto next = b.opImm(Opcode::ADD, acc, 3);
  b.defineCarried(acc, next);
  b.liveOut(2, acc);
  const KernelDfg g = b.build();
  Scratchpad l1;
  ScratchpadMem mem(l1);
  const RefResult r = interpretKernel(g, 10, {{1, 5}}, mem);
  ASSERT_EQ(r.liveOutValues.size(), 1u);
  EXPECT_EQ(r.liveOutValues[0].first, 2);
  EXPECT_EQ(r.liveOutValues[0].second, 35u);
}

TEST(Dfg, InterpreterZeroTripsKeepsSeed) {
  KernelBuilder b("acc0");
  auto acc = b.carried(1);
  auto next = b.opImm(Opcode::ADD, acc, 3);
  b.defineCarried(acc, next);
  b.liveOut(2, acc);
  const KernelDfg g = b.build();
  Scratchpad l1;
  ScratchpadMem mem(l1);
  const RefResult r = interpretKernel(g, 0, {{1, 7}}, mem);
  EXPECT_EQ(r.liveOutValues[0].second, 7u);
}

TEST(Dfg, InterpreterMemoryKernel) {
  // out[i] = in[i] * 2 over 8 words.
  KernelBuilder b("dbl");
  auto i = b.carried(1);
  auto inB = b.liveIn(2);
  auto outB = b.liveIn(3);
  auto ai = b.op(Opcode::ADD, inB, i);
  auto v = b.loadImm(Opcode::LD_I, ai, 0);
  auto v2 = b.opImm(Opcode::LSL, v, 1);
  auto ao = b.op(Opcode::ADD, outB, i);
  b.storeImm(Opcode::ST_I, ao, 0, v2);
  b.defineCarried(i, b.opImm(Opcode::ADD, i, 4));
  const KernelDfg g = b.build();

  Scratchpad l1;
  for (u32 k = 0; k < 8; ++k) l1.write32(0x100 + 4 * k, k + 1);
  ScratchpadMem mem(l1);
  (void)interpretKernel(g, 8, {{1, 0}, {2, 0x100}, {3, 0x200}}, mem);
  for (u32 k = 0; k < 8; ++k)
    EXPECT_EQ(l1.read32(0x200 + 4 * k), 2 * (k + 1));
}

TEST(Dfg, InterpreterRequiresLiveIns) {
  KernelBuilder b("needs");
  auto x = b.liveIn(4);
  b.opImm(Opcode::ADD, x, 1);
  const KernelDfg g = b.build();
  Scratchpad l1;
  ScratchpadMem mem(l1);
  EXPECT_THROW(interpretKernel(g, 1, {}, mem), SimError);
}

TEST(Dfg, Ld64PairInInterpreter) {
  KernelBuilder b("ld64");
  auto base = b.liveIn(1);
  auto lo = b.loadImm(Opcode::LD_I, base, 0);
  auto full = b.loadHighImm(lo, base, 1);
  b.liveOut(2, full);
  const KernelDfg g = b.build();
  Scratchpad l1;
  l1.write32(0x80, 0xAAAA5555);
  l1.write32(0x84, 0x1234FEDC);
  ScratchpadMem mem(l1);
  const RefResult r = interpretKernel(g, 1, {{1, 0x80}}, mem);
  EXPECT_EQ(r.liveOutValues[0].second, 0x1234FEDC'AAAA5555ull);
}

TEST(Dfg, ControlOpsRejected) {
  KernelBuilder b("ctl");
  auto x = b.liveIn(1);
  b.op(Opcode::JMP, x, x);
  EXPECT_THROW(b.build(), SimError);
}

}  // namespace
}  // namespace adres
