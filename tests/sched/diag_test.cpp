// Structured scheduler diagnostics: per-(II, restart) attempt records are
// queryable after both successful and failed scheduleKernel() calls.
//
// The forced-failure construction: three independent DIVs.  The divider is
// non-pipelined (8 consecutive issue slots) and lives on FUs 0-1 only, so
// ResMII = max(8, ceil(8*3+1)/2) = 12, but at any II in [12, 15] the two
// divider FUs can book at most one 8-slot window each — the third DIV can
// never be placed until II reaches 16.  Capping maxII below 16 therefore
// yields a deterministic failure with real attempt records.
#include <gtest/gtest.h>

#include "sched/modulo.hpp"

namespace adres {
namespace {

KernelDfg tripleDivKernel() {
  KernelBuilder b("div3");
  auto a = b.liveIn(1);
  auto c = b.liveIn(2);
  auto d = b.liveIn(3);
  auto e = b.liveIn(4);
  b.liveOut(8, b.op(Opcode::DIV, a, c));
  b.liveOut(9, b.op(Opcode::DIV, c, d));
  b.liveOut(10, b.op(Opcode::DIV, d, e));
  return b.build();
}

KernelDfg vecIncKernel() {
  KernelBuilder b("vecinc");
  auto ptr = b.carried(1);
  auto x = b.loadImm(Opcode::LD_I, ptr, 0);
  auto y = b.opImm(Opcode::ADD, x, 1);
  b.storeImm(Opcode::ST_I, ptr, 0, y);
  b.defineCarried(ptr, b.opImm(Opcode::ADD, ptr, 4));
  b.liveOut(16, ptr);
  return b.build();
}

TEST(ScheduleDiagnostics, SuccessfulScheduleFillsRecord) {
  const KernelDfg g = vecIncKernel();
  ScheduleDiagnostics diag;
  ScheduleOptions opts;
  opts.diag = &diag;
  const ScheduledKernel sk = scheduleKernel(g, opts);

  EXPECT_EQ(diag.kernel, "vecinc");
  EXPECT_EQ(diag.miiResource, resourceMii(g));
  EXPECT_EQ(diag.miiRecurrence, recurrenceMii(g));
  EXPECT_TRUE(diag.succeeded);
  EXPECT_EQ(diag.finalII, sk.ii);
  EXPECT_EQ(diag.finalMoves, sk.routeMoves);
  ASSERT_FALSE(diag.attempts.empty());
  const ScheduleAttempt& last = diag.attempts.back();
  EXPECT_TRUE(last.success);
  EXPECT_EQ(last.ii, sk.ii);
  EXPECT_EQ(last.placedNodes, g.opNodeCount());
  EXPECT_EQ(last.failedNode, -1);
  EXPECT_TRUE(last.failedOp.empty());
  EXPECT_EQ(last.routeMoves, sk.routeMoves);
  // Every attempt before the last one failed (otherwise it would be last).
  for (std::size_t i = 0; i + 1 < diag.attempts.size(); ++i)
    EXPECT_FALSE(diag.attempts[i].success);
  // Attempts are recorded in execution order: II never decreases.
  for (std::size_t i = 1; i < diag.attempts.size(); ++i)
    EXPECT_GE(diag.attempts[i].ii, diag.attempts[i - 1].ii);
  EXPECT_FALSE(diag.summary().empty());
}

TEST(ScheduleDiagnostics, ForcedFailureProducesAttemptRecords) {
  const KernelDfg g = tripleDivKernel();
  ASSERT_EQ(resourceMii(g), 12) << "3 non-pipelined divs bound the II";

  ScheduleDiagnostics diag;
  ScheduleOptions opts;
  opts.maxII = 14;  // >= MII so attempts run, < 16 so none can succeed
  opts.diag = &diag;
  EXPECT_THROW(scheduleKernel(g, opts), SimError);

  EXPECT_EQ(diag.kernel, "div3");
  EXPECT_EQ(diag.miiResource, 12);
  EXPECT_FALSE(diag.succeeded);
  EXPECT_EQ(diag.finalII, 0);
  ASSERT_FALSE(diag.attempts.empty()) << "diag filled before the throw";
  for (const ScheduleAttempt& a : diag.attempts) {
    EXPECT_FALSE(a.success);
    EXPECT_GE(a.ii, 12);
    EXPECT_LE(a.ii, 14);
    EXPECT_GE(a.failedNode, 0) << "the blocking node is identified";
    EXPECT_EQ(a.failedOp, "DIV");
    EXPECT_LT(a.placedNodes, g.opNodeCount());
    EXPECT_GT(a.placementRejects, 0) << "candidate slots were tried";
    EXPECT_FALSE(a.lastReject.empty());
  }
  EXPECT_FALSE(diag.summary().empty());
}

TEST(ScheduleDiagnostics, SameKernelSucceedsPastTheDividerBound) {
  // Control for the forced-failure test: with maxII back at the default,
  // the same graph maps as soon as one FU can hold two 8-slot bookings.
  const KernelDfg g = tripleDivKernel();
  ScheduleDiagnostics diag;
  ScheduleOptions opts;
  opts.diag = &diag;
  const ScheduledKernel sk = scheduleKernel(g, opts);
  EXPECT_GE(sk.ii, 16);
  EXPECT_TRUE(diag.succeeded);
  EXPECT_EQ(diag.finalII, sk.ii);
  // The failed II=12..15 probes are part of the record.
  bool sawFailure = false;
  for (const ScheduleAttempt& a : diag.attempts)
    if (!a.success && a.ii < 16) sawFailure = true;
  EXPECT_TRUE(sawFailure);
}

TEST(ScheduleDiagnostics, NullDiagStillSchedules) {
  const ScheduledKernel sk = scheduleKernel(vecIncKernel());
  EXPECT_GT(sk.ii, 0);
}

}  // namespace
}  // namespace adres
