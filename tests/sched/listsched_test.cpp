// VLIW list scheduler: packing and dependence discipline.
#include "sched/listsched.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace adres {
namespace {

Instr mkAdd(int dst, int a, int b) {
  Instr in;
  in.op = Opcode::ADD;
  in.dst = static_cast<u8>(dst);
  in.src1 = static_cast<u8>(a);
  in.src2 = static_cast<u8>(b);
  return in;
}

Instr mkMovi(int dst, i32 v) {
  Instr in;
  in.op = Opcode::MOVI;
  in.dst = static_cast<u8>(dst);
  in.useImm = true;
  in.imm = v;
  return in;
}

int bundleOf(const std::vector<Bundle>& bs, Opcode op, int dst) {
  for (std::size_t i = 0; i < bs.size(); ++i)
    for (const Instr& in : bs[i].slot)
      if (in.op == op && in.dst == dst) return static_cast<int>(i);
  return -1;
}

TEST(ListSched, IndependentOpsPackTogether) {
  const auto bs = scheduleVliw({mkMovi(1, 1), mkMovi(2, 2), mkMovi(3, 3)});
  EXPECT_EQ(bs.size(), 1u) << "three independent ops fill one bundle";
}

TEST(ListSched, DependentOpsSpaced) {
  const auto bs = scheduleVliw({mkMovi(1, 1), mkAdd(2, 1, 1), mkAdd(3, 2, 2)});
  EXPECT_EQ(bundleOf(bs, Opcode::MOVI, 1), 0);
  EXPECT_EQ(bundleOf(bs, Opcode::ADD, 2), 1);
  EXPECT_EQ(bundleOf(bs, Opcode::ADD, 3), 2);
}

TEST(ListSched, LoadLatencySpacesConsumer) {
  Instr ld;
  ld.op = Opcode::LD_I;
  ld.dst = 1;
  ld.src1 = 5;
  ld.useImm = true;
  ld.imm = 0;
  const auto bs = scheduleVliw({ld, mkAdd(2, 1, 1)});
  const int consumer = bundleOf(bs, Opcode::ADD, 2);
  EXPECT_GE(consumer, 5) << "5-cycle load latency respected in packing";
}

TEST(ListSched, StoreIsMemoryBarrier) {
  Instr st;
  st.op = Opcode::ST_I;
  st.src1 = 1;
  st.useImm = true;
  st.imm = 0;
  st.src3 = 2;
  Instr ld;
  ld.op = Opcode::LD_I;
  ld.dst = 3;
  ld.src1 = 1;
  ld.useImm = true;
  ld.imm = 0;
  const auto bs = scheduleVliw({st, ld});
  int stB = -1, ldB = -1;
  for (std::size_t i = 0; i < bs.size(); ++i)
    for (const Instr& in : bs[i].slot) {
      if (in.op == Opcode::ST_I) stB = static_cast<int>(i);
      if (in.op == Opcode::LD_I) ldB = static_cast<int>(i);
    }
  EXPECT_GT(ldB, stB) << "load after aliasing store";
}

TEST(ListSched, AntiDependenceRespected) {
  // r2 = r1 + 0 ; r1 = 7  — the write to r1 must not land before the read.
  const auto bs = scheduleVliw({mkAdd(2, 1, 1), mkMovi(1, 7)});
  const int rd = bundleOf(bs, Opcode::ADD, 2);
  const int wr = bundleOf(bs, Opcode::MOVI, 1);
  EXPECT_GE(wr, rd);
}

TEST(ListSched, DivOnlyOnSlots01) {
  Instr d;
  d.op = Opcode::DIV;
  d.dst = 3;
  d.src1 = 1;
  d.src2 = 2;
  const auto bs = scheduleVliw({d});
  bool found = false;
  for (const Bundle& b : bs)
    for (int s = 0; s < kVliwSlots; ++s)
      if (b.slot[s].op == Opcode::DIV) {
        EXPECT_LT(s, 2);
        found = true;
      }
  EXPECT_TRUE(found);
}

TEST(ListSched, RejectsControlFlow) {
  Instr br;
  br.op = Opcode::BR;
  br.useImm = true;
  br.imm = 1;
  EXPECT_THROW(scheduleVliw({br}), SimError);
}

TEST(ListSched, ManyIndependentOpsUseAllSlots) {
  std::vector<Instr> seq;
  for (int i = 1; i <= 9; ++i) seq.push_back(mkMovi(i, i));
  const auto bs = scheduleVliw(seq);
  EXPECT_EQ(bs.size(), 3u) << "9 ops / 3 slots = 3 bundles";
}

}  // namespace
}  // namespace adres
