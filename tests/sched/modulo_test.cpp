// Modulo scheduler: mapped kernels must compute exactly what their DFG
// means (reference interpreter), across II values, trip counts, and the
// routing machinery.
#include "sched/modulo.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "testutil.hpp"

namespace adres {
namespace {

using testutil::checkKernelAgainstReference;

// Register conventions used in these tests.
constexpr int R_I = 1;
constexpr int R_IN = 2;
constexpr int R_OUT = 3;
constexpr int R_ACC = 4;
constexpr int R_RES = 5;

KernelDfg vecIncKernel() {
  KernelBuilder b("vecinc");
  auto i = b.carried(R_I);
  auto inB = b.liveIn(R_IN);
  auto outB = b.liveIn(R_OUT);
  auto ai = b.op(Opcode::ADD, inB, i);
  auto v = b.loadImm(Opcode::LD_I, ai, 0);
  auto v2 = b.opImm(Opcode::ADD, v, 1);
  auto ao = b.op(Opcode::ADD, outB, i);
  b.storeImm(Opcode::ST_I, ao, 0, v2);
  b.defineCarried(i, b.opImm(Opcode::ADD, i, 4));
  b.liveOut(R_RES, i);
  return b.build();
}

TEST(Modulo, MiiLowerBounds) {
  const KernelDfg g = vecIncKernel();
  EXPECT_GE(resourceMii(g), 1);
  EXPECT_GE(recurrenceMii(g), 1);
  // vecinc recurrence: i -> i+4 (1-cycle add) => RecMII >= 1.
  EXPECT_EQ(recurrenceMii(g), 1);
}

TEST(Modulo, VecIncMatchesReference) {
  std::vector<u8> in;
  for (u32 k = 0; k < 16; ++k) {
    const u32 v = 100 + k;
    for (int byte = 0; byte < 4; ++byte) in.push_back(static_cast<u8>(v >> (8 * byte)));
  }
  const auto run = checkKernelAgainstReference(
      vecIncKernel(), 16,
      {{R_I, 0}, {R_IN, 0x100}, {R_OUT, 0x200}},
      {{0x100, in}}, 0x300);
  EXPECT_LE(run.sk.ii, 4) << "a 6-op kernel must map tightly";
}

TEST(Modulo, VecIncTripCountSweep) {
  for (u32 trips : {1u, 2u, 3u, 7u, 32u}) {
    std::vector<u8> in(4 * 32, 0);
    for (u32 k = 0; k < 32; ++k) in[4 * k] = static_cast<u8>(k);
    (void)checkKernelAgainstReference(
        vecIncKernel(), trips,
        {{R_I, 0}, {R_IN, 0x100}, {R_OUT, 0x400}},
        {{0x100, in}}, 0x500);
  }
}

TEST(Modulo, DotProductAccumulator) {
  KernelBuilder b("dot");
  auto i = b.carried(R_I);
  auto acc = b.carried(R_ACC);
  auto aB = b.liveIn(R_IN);
  auto bB = b.liveIn(R_OUT);
  auto aa = b.op(Opcode::ADD, aB, i);
  auto ab = b.op(Opcode::ADD, bB, i);
  auto va = b.loadImm(Opcode::LD_I, aa, 0);
  auto vb = b.loadImm(Opcode::LD_I, ab, 0);
  auto p = b.op(Opcode::MUL, va, vb);
  auto accN = b.op(Opcode::ADD, acc, p);
  b.defineCarried(acc, accN);
  b.defineCarried(i, b.opImm(Opcode::ADD, i, 4));
  b.liveOut(R_RES, acc);
  const KernelDfg g = b.build();

  std::vector<u8> a, bb;
  for (u32 k = 0; k < 8; ++k) {
    for (int byte = 0; byte < 4; ++byte) {
      a.push_back(static_cast<u8>((k + 1) >> (8 * byte)));
      bb.push_back(static_cast<u8>((2 * k + 1) >> (8 * byte)));
    }
  }
  (void)checkKernelAgainstReference(
      g, 8, {{R_I, 0}, {R_ACC, 0}, {R_IN, 0x100}, {R_OUT, 0x180}},
      {{0x100, a}, {0x180, bb}}, 0x200);
}

TEST(Modulo, SimdComplexMultiplyKernel) {
  // c[i] = a[i] * b[i] for packed cint16 pairs: the modem's hottest pattern
  // (64-bit loads as LD_I/LD_IH pairs, D4PROD/C4PROD/C4PSUB/C4PADD/C4MIX,
  // 64-bit stores as ST_I/ST_IH pairs).
  KernelBuilder b("cmul");
  auto i = b.carried(R_I);
  auto aB = b.liveIn(R_IN);
  auto bB = b.liveIn(R_OUT);
  auto cB = b.liveIn(6);
  auto aa = b.op(Opcode::ADD, aB, i);
  auto ab = b.op(Opcode::ADD, bB, i);
  auto ac = b.op(Opcode::ADD, cB, i);
  auto aLo = b.loadImm(Opcode::LD_I, aa, 0);
  auto aV = b.loadHighImm(aLo, aa, 1);
  auto bLo = b.loadImm(Opcode::LD_I, ab, 0);
  auto bV = b.loadHighImm(bLo, ab, 1);
  auto d = b.op(Opcode::D4PROD, aV, bV);
  auto c = b.op(Opcode::C4PROD, aV, bV);
  auto re = b.op(Opcode::C4PSUB, d);
  auto im = b.op(Opcode::C4PADD, c);
  auto z = b.op(Opcode::C4MIX, re, im);
  b.storeImm(Opcode::ST_I, ac, 0, z);
  b.storeImm(Opcode::ST_IH, ac, 1, z);
  b.defineCarried(i, b.opImm(Opcode::ADD, i, 8));
  const KernelDfg g = b.build();

  Rng rng(99);
  std::vector<u8> a, bb;
  for (u32 k = 0; k < 16 * 8; ++k) {
    a.push_back(static_cast<u8>(rng.next()));
    bb.push_back(static_cast<u8>(rng.next()));
  }
  const auto run = checkKernelAgainstReference(
      g, 16, {{R_I, 0}, {R_IN, 0x100}, {R_OUT, 0x300}, {6, 0x500}},
      {{0x100, a}, {0x300, bb}}, 0x600);
  // 16 ops, 6 of them memory ops on 4 FUs: ResMII >= 2.
  EXPECT_GE(run.sk.ii, 2);
  EXPECT_LE(run.sk.ii, 6) << "dense mapping expected";
}

TEST(Modulo, DivKernelNeedsIiEight) {
  KernelBuilder b("divk");
  auto i = b.carried(R_I);
  auto inB = b.liveIn(R_IN);
  auto outB = b.liveIn(R_OUT);
  auto ai = b.op(Opcode::ADD, inB, i);
  auto v = b.loadImm(Opcode::LD_I, ai, 0);
  auto q = b.opImm(Opcode::DIV, v, 7);
  auto ao = b.op(Opcode::ADD, outB, i);
  b.storeImm(Opcode::ST_I, ao, 0, q);
  b.defineCarried(i, b.opImm(Opcode::ADD, i, 4));
  const KernelDfg g = b.build();
  EXPECT_GE(resourceMii(g), 8) << "non-pipelined divider dominates";

  std::vector<u8> in;
  for (u32 k = 0; k < 4; ++k) {
    const u32 v = 1000 + 13 * k;
    for (int byte = 0; byte < 4; ++byte) in.push_back(static_cast<u8>(v >> (8 * byte)));
  }
  const auto run = checkKernelAgainstReference(
      g, 4, {{R_I, 0}, {R_IN, 0x100}, {R_OUT, 0x200}},
      {{0x100, in}}, 0x300);
  EXPECT_GE(run.sk.ii, 8);
}

TEST(Modulo, RecurrenceBoundsII) {
  // acc = (acc * k) computed with MUL (latency 2): RecMII >= 2.
  KernelBuilder b("geo");
  auto acc = b.carried(R_ACC);
  auto next = b.opImm(Opcode::MUL, acc, 3);
  b.defineCarried(acc, next);
  b.liveOut(R_RES, acc);
  const KernelDfg g = b.build();
  EXPECT_GE(recurrenceMii(g), 2);
  const auto run = checkKernelAgainstReference(g, 5, {{R_ACC, 1}}, {}, 0x10);
  EXPECT_GE(run.sk.ii, 2);
}

TEST(Modulo, ConfigRoundTripPreservesSchedule) {
  const ScheduledKernel sk = scheduleKernel(vecIncKernel());
  const KernelConfig back = decodeKernel(encodeKernel(sk.config));
  EXPECT_EQ(back.ii, sk.config.ii);
  EXPECT_EQ(back.preloads.size(), sk.config.preloads.size());
  EXPECT_EQ(back.opCount(), sk.config.opCount());
}

TEST(Modulo, UtilizationReported) {
  const ScheduledKernel sk = scheduleKernel(vecIncKernel());
  EXPECT_GT(sk.slotUtilization(), 0.0);
  EXPECT_LE(sk.slotUtilization(), 1.0);
  EXPECT_EQ(sk.opNodes, 6);
}

}  // namespace
}  // namespace adres
