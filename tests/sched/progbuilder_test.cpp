// ProgramBuilder: constants, labels, data placement, pseudo-ops.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/processor.hpp"
#include "sched/progbuilder.hpp"

namespace adres {
namespace {

TEST(ProgBuilder, LiCoversWholeRange) {
  ProgramBuilder b("li");
  int reg = 1;
  const i32 values[] = {0, 1, -1, 2047, -2048, 2048, -2049, 0x7FFFFF,
                        -0x800000, 0xABCDE};
  for (i32 v : values) b.li(reg++, v);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  reg = 1;
  for (i32 v : values) EXPECT_EQ(lo32(p.regs().peek(reg++)), v) << v;
}

TEST(ProgBuilder, LiRejectsOutOfRange) {
  ProgramBuilder b("li2");
  EXPECT_THROW(b.li(1, 1 << 24), SimError);
}

TEST(ProgBuilder, ForwardAndBackwardLabels) {
  // Skip-over-forward then loop-backward.
  ProgramBuilder b("labels");
  b.li(1, 0);
  auto skip = b.newLabel();
  b.br(skip);
  b.li(1, 99);  // skipped
  b.bind(skip);
  b.li(2, 0);
  b.li(3, 5);  // loop limit
  auto top = b.newLabel();
  b.bind(top);
  b.addi(2, 2, 1);
  b.predLt(1, 2, 3);
  b.brIf(1, top);
  b.halt();
  Processor p;
  p.load(b.build());
  EXPECT_EQ(p.run(), StopReason::kHalt);
  EXPECT_EQ(p.regs().peek(1), 0u) << "forward branch skipped the li";
  EXPECT_EQ(p.regs().peek(2), 5u) << "backward loop ran to the limit";
}

TEST(ProgBuilder, UnboundLabelRejected) {
  ProgramBuilder b("unbound");
  auto l = b.newLabel();
  b.br(l);
  b.halt();
  EXPECT_THROW(b.build(), SimError);
}

TEST(ProgBuilder, DataPlacementIsAlignedAndDisjoint) {
  ProgramBuilder b("data");
  const u32 a = b.dataI16({1, 2, 3});
  const u32 c = b.dataI32({7, 8});
  const u32 d = b.reserve(10, 16);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(c % 8, 0u);
  EXPECT_EQ(d % 16, 0u);
  EXPECT_GT(c, a);
  EXPECT_GT(d, c);
  b.halt();
  Processor p;
  p.load(b.build());
  EXPECT_EQ(p.l1().read16(a + 2), 2u);
  EXPECT_EQ(p.l1().read32(c + 4), 8u);
}

TEST(ProgBuilder, St64Ld64RoundTrip) {
  ProgramBuilder b("w64");
  const u32 buf = b.reserve(16);
  b.li(1, static_cast<i32>(buf));
  b.li(2, 0x1234);
  b.li(3, -77);
  b.st32(1, 0, 2);
  b.st32(1, 1, 3);
  b.ld64(4, 1, 0);
  b.st64(1, 2, 4);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  EXPECT_EQ(p.l1().read32(buf + 8), 0x1234u);
  EXPECT_EQ(p.l1().read32(buf + 12), static_cast<u32>(-77));
}

TEST(ProgBuilder, MarkersProfileRegionsByName) {
  ProgramBuilder b("marks");
  b.marker("alpha");
  b.li(1, 1);
  b.marker("beta");
  b.li(2, 2);
  b.marker("alpha");  // reopen: same region id
  b.li(3, 3);
  b.markerEnd();
  b.halt();
  Processor p;
  const Program prog = b.build();
  EXPECT_EQ(prog.regionNames.size(), 2u);
  p.load(prog);
  p.run();
  EXPECT_EQ(p.profiles().at(prog.regionId("alpha")).entries, 2u);
  EXPECT_EQ(p.profiles().at(prog.regionId("beta")).entries, 1u);
}

}  // namespace
}  // namespace adres
