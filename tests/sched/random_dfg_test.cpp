// Property test: randomly generated kernel dataflow graphs, scheduled and
// routed onto the array, must compute exactly what the reference
// interpreter says — across trip counts, op mixes, loads/stores, carried
// values and immediates.  This exercises the scheduler's placement,
// routing windows, LD_I/LD_IH pairing, preload seeding and the array's
// modulo sequencing far beyond the hand-written kernels.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "testutil.hpp"

namespace adres {
namespace {

constexpr int R_IDX = 1;
constexpr int R_IN = 2;
constexpr int R_OUT = 3;
constexpr int R_ACC = 4;
constexpr int R_ACCOUT = 16;
constexpr int R_IDXOUT = 17;

/// Ops safe for random wiring (binary, full-word semantics).
const Opcode kBinaryOps[] = {
    Opcode::ADD,    Opcode::SUB,     Opcode::AND,      Opcode::OR,
    Opcode::XOR,    Opcode::C4ADD,   Opcode::C4SUB,    Opcode::C4MAX,
    Opcode::C4MIN,  Opcode::D4PROD,  Opcode::C4PROD,   Opcode::C4MIX,
    Opcode::C4HILO, Opcode::C4PADD,  Opcode::C4PSUB,   Opcode::MUL,
};
const Opcode kUnaryOps[] = {Opcode::C4ABS, Opcode::C4NEG, Opcode::MOV};

struct RandomKernel {
  KernelDfg dfg;
  int loadCount = 0;
  int storeCount = 0;
};

RandomKernel buildRandom(u64 seed) {
  Rng rng(seed);
  KernelBuilder b("random_" + std::to_string(seed));
  RandomKernel out;

  auto idx = b.carried(R_IDX);
  auto inBase = b.liveIn(R_IN);
  auto outBase = b.liveIn(R_OUT);
  auto acc = b.carried(R_ACC);

  std::vector<ValueId> values;
  values.push_back(idx);
  values.push_back(inBase);
  auto pick = [&]() {
    return values[static_cast<std::size_t>(rng.below(values.size()))];
  };

  const int nOps = 4 + static_cast<int>(rng.below(14));
  ValueId lastLoad{};
  for (int i = 0; i < nOps; ++i) {
    const u64 kind = rng.below(10);
    if (kind < 2 && out.loadCount < 4) {
      // A load from the input buffer (index-strided, within bounds).
      auto addr = b.op(Opcode::ADD, inBase, idx);
      auto v = b.loadImm(Opcode::LD_I, addr,
                         static_cast<i32>(rng.below(8)));
      if (rng.bit()) {
        v = b.loadHighImm(v, addr, static_cast<i32>(8 + rng.below(8)));
      }
      values.push_back(v);
      lastLoad = v;
      ++out.loadCount;
    } else if (kind < 3) {
      values.push_back(b.op(rng.bit() ? Opcode::C4ABS : Opcode::C4NEG, pick()));
    } else if (kind < 5) {
      // Immediate form.
      values.push_back(b.opImm(
          rng.bit() ? Opcode::ADD : Opcode::C4SHIFTR, pick(),
          static_cast<i32>(rng.below(7)) + 1));
    } else {
      values.push_back(
          b.op(kBinaryOps[rng.below(sizeof(kBinaryOps) / sizeof(Opcode))],
               pick(), pick()));
    }
  }

  // One or two stores to the output buffer.
  const int nStores = 1 + static_cast<int>(rng.below(2));
  for (int i = 0; i < nStores; ++i) {
    auto so = b.op(Opcode::ADD, outBase, idx);
    b.storeImm(Opcode::ST_I, so, static_cast<i32>(4 * i), pick());
    ++out.storeCount;
  }

  // Carried accumulator over some computed value.
  b.defineCarried(acc, b.op(Opcode::C4ADD, acc, pick()));
  b.defineCarried(idx, b.opImm(Opcode::ADD, idx, 64));
  b.liveOut(R_ACCOUT, acc);
  b.liveOut(R_IDXOUT, idx);
  out.dfg = b.build();
  return out;
}

class RandomDfg : public ::testing::TestWithParam<u64> {};

TEST_P(RandomDfg, ScheduledExecutionMatchesInterpreter) {
  const u64 seed = GetParam();
  const RandomKernel rk = buildRandom(seed);

  Rng rng(seed * 77 + 1);
  std::vector<u8> input(1024);
  for (auto& v : input) v = static_cast<u8>(rng.next());

  for (u32 trips : {1u, 2u, 9u}) {
    testutil::checkKernelAgainstReference(
        rk.dfg, trips,
        {{R_IDX, 0}, {R_IN, 0x800}, {R_OUT, 0x1800}, {R_ACC, 0}},
        {{0x800, input}}, 0x2200);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDfg,
                         ::testing::Range<u64>(1, 26));

}  // namespace
}  // namespace adres
