// The mapped FFT pipeline (bit-reversal + 6 butterfly stages) must be
// bit-exact with dsp::fftScaled, covering both antennas in one launch set.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "sdr/kernels.hpp"
#include "sdr/tables.hpp"
#include "testutil.hpp"

namespace adres::sdr {
namespace {

struct Fabric {
  CentralRegFile crf;
  Scratchpad l1;
  ConfigMemory cfg;
  ActivityCounters act;
  CgaArray array{crf, l1, cfg, act};
};

std::vector<u8> wordsToBytes(const std::vector<Word>& ws) {
  std::vector<u8> out;
  for (Word w : ws)
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(w >> (8 * i)));
  return out;
}

std::vector<u8> u16ToBytes(const std::vector<u16>& vs) {
  std::vector<u8> out;
  for (u16 v : vs) {
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
  }
  return out;
}

std::vector<u8> samplesToBytes(const std::vector<cint16>& s) {
  std::vector<u8> out;
  for (const auto& v : s) {
    out.push_back(static_cast<u8>(static_cast<u16>(v.re)));
    out.push_back(static_cast<u8>(static_cast<u16>(v.re) >> 8));
    out.push_back(static_cast<u8>(static_cast<u16>(v.im)));
    out.push_back(static_cast<u8>(static_cast<u16>(v.im) >> 8));
  }
  return out;
}

/// Runs the full mapped FFT over `nFfts` back-to-back buffers at `buf`.
/// Scratch: bit-reversal output written to `buf` after gathering via `tmp`.
u64 runMappedFft(Fabric& f, u32 buf, u32 tmp, int nFfts) {
  u64 cycles = 0;
  // Tables.
  const u32 revTab = 0xE000;
  f.l1.loadBytes(revTab, u16ToBytes(bitrevByteOffsets()));

  const ScheduledKernel rev = scheduleKernel(BitrevKernel::build());
  for (int n = 0; n < nFfts; ++n) {
    f.crf.poke(BitrevKernel::kIn, buf + 256 * static_cast<u32>(n));
    f.crf.poke(BitrevKernel::kOut, tmp + 256 * static_cast<u32>(n));
    f.crf.poke(BitrevKernel::kIdxTab, revTab);
    cycles += f.array.run(rev.config, 64).cycles;
  }
  // Copy back (gather wrote to tmp; treat tmp as the working buffer).
  const u32 work = tmp;

  const ScheduledKernel s1 = scheduleKernel(FftStage1Kernel::build());
  f.crf.poke(FftStage1Kernel::kBuf, work);
  cycles += f.array.run(s1.config, FftStage1Kernel::trips(nFfts)).cycles;

  u32 tabAddr = 0xE400;
  for (int stage = 2; stage <= 6; ++stage) {
    const FftStageTables t = fftStageTables(stage, nFfts);
    const u32 offAddr = tabAddr;
    f.l1.loadBytes(offAddr, u16ToBytes(t.aOffsets));
    const u32 twAddr = offAddr + 0x100;
    f.l1.loadBytes(twAddr, wordsToBytes(t.twiddlePairs));
    tabAddr += 0x300;

    const ScheduledKernel sk = scheduleKernel(FftStageKernel::build(t.halfBytes));
    f.crf.poke(FftStageKernel::kBuf, work);
    f.crf.poke(FftStageKernel::kOffTab, offAddr);
    f.crf.poke(FftStageKernel::kTwTab, twAddr);
    cycles += f.array.run(sk.config, static_cast<u32>(t.pairCount)).cycles;
  }
  return cycles;
}

TEST(FftKernel, BitExactWithGoldenTwoAntennas) {
  Rng rng(5);
  std::vector<cint16> x0(64), x1(64);
  for (auto& v : x0)
    v = {static_cast<i16>(static_cast<i16>(rng.next()) / 8),
         static_cast<i16>(static_cast<i16>(rng.next()) / 8)};
  for (auto& v : x1)
    v = {static_cast<i16>(static_cast<i16>(rng.next()) / 8),
         static_cast<i16>(static_cast<i16>(rng.next()) / 8)};

  Fabric f;
  f.l1.loadBytes(0x1000, samplesToBytes(x0));
  f.l1.loadBytes(0x1100, samplesToBytes(x1));
  const u64 cycles = runMappedFft(f, 0x1000, 0x2000, 2);

  std::vector<cint16> g0 = x0, g1 = x1;
  dsp::fftScaled(g0);
  dsp::fftScaled(g1);

  for (int k = 0; k < 64; ++k) {
    const u32 w0 = f.l1.read32(0x2000 + 4 * static_cast<u32>(k));
    const u32 w1 = f.l1.read32(0x2100 + 4 * static_cast<u32>(k));
    ASSERT_EQ((cint16{static_cast<i16>(w0 & 0xFFFF), static_cast<i16>(w0 >> 16)}),
              g0[static_cast<std::size_t>(k)])
        << "antenna 0 bin " << k;
    ASSERT_EQ((cint16{static_cast<i16>(w1 & 0xFFFF), static_cast<i16>(w1 >> 16)}),
              g1[static_cast<std::size_t>(k)])
        << "antenna 1 bin " << k;
  }
  // Table 2 shape: the paper's data-phase "fft (2x)" runs in 493 cycles on
  // their toolchain; our mapping should land within a few x.
  EXPECT_LT(cycles, 3200u) << "2-antenna FFT cycle cost";
}

TEST(FftKernel, ImpulseThroughMappedPipeline) {
  Fabric f;
  std::vector<cint16> x(64, cint16{});
  x[0] = {12800, 0};
  f.l1.loadBytes(0x1000, samplesToBytes(x));
  (void)runMappedFft(f, 0x1000, 0x2000, 1);
  for (int k = 0; k < 64; ++k) {
    const u32 w = f.l1.read32(0x2000 + 4 * static_cast<u32>(k));
    EXPECT_NEAR(static_cast<i16>(w & 0xFFFF), 200, 8) << "bin " << k;
  }
}

}  // namespace
}  // namespace adres::sdr
