// The VLIW glue routines must be bit-exact with their dsp/ golden
// counterparts: atan2, sin/phasor, packed complex multiply, folds.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/processor.hpp"
#include "dsp/lanes.hpp"
#include "dsp/trig.hpp"
#include "dsp/trig_tables.hpp"
#include "sdr/glue.hpp"

namespace adres::sdr {
namespace {

/// Builds a program that sets up tables/zero-reg, runs `body`, halts.
Program glueProgram(const std::function<void(ProgramBuilder&)>& body,
                    u32* sinTabOut = nullptr) {
  ProgramBuilder pb("glue");
  const auto sinT = dsp::sinQuarterTableDump();
  const auto atanT = dsp::atanTableDump();
  const u32 sinTab = pb.dataI16(sinT);
  std::vector<i16> atanI(atanT.begin(), atanT.end());
  const u32 atanTab = pb.dataI16(atanI);
  const u32 scratch = pb.reserve(16);
  pb.li(60, 0);
  pb.li(greg::kSinTab, static_cast<i32>(sinTab));
  pb.li(greg::kAtanTab, static_cast<i32>(atanTab));
  pb.li(greg::kScratchAddr, static_cast<i32>(scratch));
  if (sinTabOut) *sinTabOut = sinTab;
  body(pb);
  pb.halt();
  return pb.build();
}

TEST(Glue, LiNegativeValues) {
  Processor p;
  p.load(glueProgram([](ProgramBuilder& pb) {
    pb.li(1, -32768);
    pb.li(2, -5000000);
    pb.li(3, 7000000);
    pb.li(4, -1);
  }));
  p.run();
  EXPECT_EQ(lo32(p.regs().peek(1)), -32768);
  EXPECT_EQ(lo32(p.regs().peek(2)), -5000000);
  EXPECT_EQ(lo32(p.regs().peek(3)), 7000000);
  EXPECT_EQ(lo32(p.regs().peek(4)), -1);
}

TEST(Glue, SinMatchesGolden) {
  std::vector<u16> angles;
  Rng rng(3);
  for (u32 t = 0; t < 65536; t += 1237) angles.push_back(static_cast<u16>(t));
  for (int i = 0; i < 30; ++i) angles.push_back(static_cast<u16>(rng.next()));

  for (u16 a : angles) {
    Processor p;
    p.load(glueProgram([&](ProgramBuilder& pb) {
      pb.li(1, static_cast<i32>(a));
      emitSin(pb, 2, 1);
    }));
    p.run();
    EXPECT_EQ(lo32(p.regs().peek(2)), dsp::sinQ15(a)) << "angle " << a;
  }
}

TEST(Glue, PhasorMatchesGolden) {
  for (u32 a : {0u, 100u, 16384u, 30000u, 40000u, 65000u}) {
    Processor p;
    p.load(glueProgram([&](ProgramBuilder& pb) {
      pb.li(1, static_cast<i32>(a));
      emitPhasor(pb, 2, 1);
    }));
    p.run();
    const cint16 g = dsp::phasorQ15(static_cast<u16>(a));
    const u32 packed = lo32u(p.regs().peek(2));
    EXPECT_EQ(static_cast<i16>(packed & 0xFFFF), g.re) << a;
    EXPECT_EQ(static_cast<i16>(packed >> 16), g.im) << a;
  }
}

TEST(Glue, Atan2MatchesGolden) {
  Rng rng(11);
  std::vector<std::pair<i32, i32>> cases = {
      {0, 1000},  {1000, 0},    {-500, 700},   {700, -500}, {-64, -3000},
      {12345, 6}, {-1, -1},     {32767, 32767}, {0, 0},     {-40000, 100000},
  };
  for (int i = 0; i < 40; ++i)
    cases.emplace_back(static_cast<i32>(rng.below(200000)) - 100000,
                       static_cast<i32>(rng.below(200000)) - 100000);
  for (const auto& [im, re] : cases) {
    Processor p;
    p.load(glueProgram([&, imv = im, rev = re](ProgramBuilder& pb) {
      pb.li(1, imv);
      pb.li(2, rev);
      emitAtan2(pb, 3, 1, 2);
    }));
    p.run();
    EXPECT_EQ(lo32u(p.regs().peek(3)), dsp::atan2Turns(im, re))
        << "im=" << im << " re=" << re;
  }
}

TEST(Glue, CmulPackedMatchesGolden) {
  Rng rng(7);
  for (int i = 0; i < 25; ++i) {
    const cint16 a{static_cast<i16>(rng.next()), static_cast<i16>(rng.next())};
    const cint16 b{static_cast<i16>(rng.next()), static_cast<i16>(rng.next())};
    const u32 pa = static_cast<u16>(a.re) | (static_cast<u32>(static_cast<u16>(a.im)) << 16);
    const u32 pb32 = static_cast<u16>(b.re) | (static_cast<u32>(static_cast<u16>(b.im)) << 16);
    Processor p;
    p.load(glueProgram([&](ProgramBuilder& pb) {
      emitCmulPacked(pb, 3, 1, 2);  // operands poked below
    }));
    p.regs().poke(1, pa);
    p.regs().poke(2, pb32);
    p.run();
    const cint16 g = a * b;
    const u32 packed = lo32u(p.regs().peek(3));
    EXPECT_EQ(static_cast<i16>(packed & 0xFFFF), g.re);
    EXPECT_EQ(static_cast<i16>(packed >> 16), g.im);
  }
}

TEST(Glue, FoldMatchesGolden) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Word acc = rng.next();
    Processor p;
    p.load(glueProgram([&](ProgramBuilder& pb) {
      // Materialize the 64-bit accumulator via the scratch slot.
      pb.li(1, static_cast<i32>(static_cast<u32>(acc) & 0x7FFFFF));
      // Simpler: write both halves with li+stores.
      pb.li(1, 0);
      pb.st32(greg::kScratchAddr, 0, 1);
      pb.st32(greg::kScratchAddr, 1, 1);
    }));
    // Direct poke path instead (folds only read the register).
    ProgramBuilder pb2("fold");
    const u32 sinTab = pb2.dataI16(dsp::sinQuarterTableDump());
    (void)sinTab;
    pb2.li(60, 0);
    emitFold(pb2, 2, 3, 1);
    pb2.halt();
    Processor p2;
    p2.load(pb2.build());
    p2.regs().poke(1, acc);
    p2.run();
    const cint16 g = dsp::lanes::fold(acc);
    EXPECT_EQ(lo32(p2.regs().peek(2)), g.re);
    EXPECT_EQ(lo32(p2.regs().peek(3)), g.im);
  }
}

}  // namespace
}  // namespace adres::sdr
