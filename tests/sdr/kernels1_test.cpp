// Equivalence of the first kernel batch (fshift, acorr, cfo-corr, xcorr)
// against their golden DSP models, bit-exact, executing on the CGA fabric.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/lanes.hpp"
#include "dsp/preamble.hpp"
#include "dsp/sync.hpp"
#include "dsp/trig.hpp"
#include "sdr/kernels.hpp"
#include "testutil.hpp"

namespace adres::sdr {
namespace {

/// Writes complex samples into an L1-image byte vector (32-bit per sample).
std::vector<u8> samplesToBytes(const std::vector<adres::cint16>& s) {
  std::vector<u8> out;
  out.reserve(s.size() * 4);
  for (const auto& v : s) {
    const u16 re = static_cast<u16>(v.re);
    const u16 im = static_cast<u16>(v.im);
    out.push_back(static_cast<u8>(re));
    out.push_back(static_cast<u8>(re >> 8));
    out.push_back(static_cast<u8>(im));
    out.push_back(static_cast<u8>(im >> 8));
  }
  return out;
}

std::vector<adres::cint16> randomSamples(int n, u64 seed, int div = 4) {
  Rng rng(seed);
  std::vector<adres::cint16> s(static_cast<std::size_t>(n));
  for (auto& v : s)
    v = {static_cast<i16>(static_cast<i16>(rng.next()) / div),
         static_cast<i16>(static_cast<i16>(rng.next()) / div)};
  return s;
}

struct Fabric {
  CentralRegFile crf;
  Scratchpad l1;
  ConfigMemory cfg;
  ActivityCounters act;
  CgaArray array{crf, l1, cfg, act};
};

TEST(FshiftKernel, MatchesGoldenBitExact) {
  const int n = 64;
  const auto x = randomSamples(n, 42);
  const i16 step = -39;
  const u16 start = 1234;

  // Golden.
  const auto golden = adres::dsp::fshift(x, 0, n, step, start);

  // Kernel.
  const ScheduledKernel sk = scheduleKernel(FshiftKernel::build());
  Fabric f;
  f.l1.loadBytes(0x100, samplesToBytes(x));
  f.crf.poke(FshiftKernel::kSrc, 0x100);
  f.crf.poke(FshiftKernel::kDst, 0x800);
  f.crf.poke(FshiftKernel::kIdx, 0);
  // Phasor constants exactly as the golden builds them.
  const adres::cint16 w = adres::dsp::phasorQ15(static_cast<u16>(step));
  const adres::cint16 w2 = w * w;
  const adres::cint16 w4 = w2 * w2;
  adres::cint16 ph[4];
  ph[0] = adres::dsp::phasorQ15(start);
  for (int j = 1; j < 4; ++j) ph[j] = ph[j - 1] * w;
  f.crf.poke(FshiftKernel::kPhA, packC2(ph[0], ph[1]));
  f.crf.poke(FshiftKernel::kPhB, packC2(ph[2], ph[3]));
  f.crf.poke(FshiftKernel::kW4, packC2(w4, w4));

  const CgaRunResult r = f.array.run(sk.config, FshiftKernel::trips(n));
  for (int k = 0; k < n; ++k) {
    const u32 wv = f.l1.read32(0x800 + 4 * static_cast<u32>(k));
    const adres::cint16 got{static_cast<i16>(wv & 0xFFFF),
                            static_cast<i16>(wv >> 16)};
    ASSERT_EQ(got, golden[static_cast<std::size_t>(k)]) << "sample " << k;
  }
  // Table 2 shape: fshift is a dense CGA kernel.
  EXPECT_GT(r.ipc(), 4.0) << "fshift II=" << sk.ii << " moves=" << sk.routeMoves;
}

TEST(FshiftKernel, WorksAcrossLengths) {
  for (int n : {8, 32, 80, 128}) {
    const auto x = randomSamples(n, 7 + static_cast<u64>(n));
    const auto golden = adres::dsp::fshift(x, 0, n, 100, 0);
    const ScheduledKernel sk = scheduleKernel(FshiftKernel::build());
    Fabric f;
    f.l1.loadBytes(0x100, samplesToBytes(x));
    f.crf.poke(FshiftKernel::kSrc, 0x100);
    f.crf.poke(FshiftKernel::kDst, 0x1000);
    f.crf.poke(FshiftKernel::kIdx, 0);
    const adres::cint16 w = adres::dsp::phasorQ15(100);
    const adres::cint16 w2 = w * w;
    const adres::cint16 w4 = w2 * w2;
    adres::cint16 ph[4];
    ph[0] = adres::dsp::phasorQ15(0);
    for (int j = 1; j < 4; ++j) ph[j] = ph[j - 1] * w;
    f.crf.poke(FshiftKernel::kPhA, packC2(ph[0], ph[1]));
    f.crf.poke(FshiftKernel::kPhB, packC2(ph[2], ph[3]));
    f.crf.poke(FshiftKernel::kW4, packC2(w4, w4));
    (void)f.array.run(sk.config, FshiftKernel::trips(n));
    for (int k = 0; k < n; ++k) {
      const u32 wv = f.l1.read32(0x1000 + 4 * static_cast<u32>(k));
      ASSERT_EQ((adres::cint16{static_cast<i16>(wv & 0xFFFF),
                               static_cast<i16>(wv >> 16)}),
                golden[static_cast<std::size_t>(k)])
          << "n=" << n << " sample " << k;
    }
  }
}

TEST(AcorrKernel, MatchesGoldenOnStf) {
  // Run on real STF samples (through a channel) where detection matters.
  auto sig = adres::dsp::stfTime();
  sig.resize(120, adres::cint16{});
  const int d = 8;
  const auto golden = adres::dsp::acorrAt(sig, d);

  const ScheduledKernel sk = scheduleKernel(AcorrKernel::build());
  Fabric f;
  f.l1.loadBytes(0, samplesToBytes(sig));
  f.crf.poke(AcorrKernel::kSrc, 4 * static_cast<u32>(d));
  f.crf.poke(AcorrKernel::kSrcLag, 4 * static_cast<u32>(d + 16));
  f.crf.poke(AcorrKernel::kIdx, 0);
  f.crf.poke(AcorrKernel::kSplat, dsp::lanes::splat(8192));
  (void)f.array.run(sk.config, AcorrKernel::kTrips);

  const adres::cint16 corr = dsp::lanes::fold(f.crf.peek(AcorrKernel::kAccP));
  const i16 e1 = dsp::lanes::fold(f.crf.peek(AcorrKernel::kAccE1)).re;
  const i16 e2 = dsp::lanes::fold(f.crf.peek(AcorrKernel::kAccE2)).re;
  EXPECT_EQ(corr, golden.corr);
  EXPECT_EQ(e1, golden.energy);
  EXPECT_EQ(e2, golden.energyLag);
}

TEST(CfoCorrKernel, ReproducesStfEstimate) {
  // Inject a CFO on the STF; kernel correlation + golden atan must equal
  // the golden estimator end to end.
  const auto& stf = adres::dsp::stfTime();
  std::vector<adres::cint16> rot(stf.size());
  const int inject = 64;
  for (std::size_t nidx = 0; nidx < stf.size(); ++nidx)
    rot[nidx] = stf[nidx] * adres::dsp::phasorQ15(static_cast<u16>(
                                static_cast<i32>(inject) * static_cast<i32>(nidx)));
  const int d = 16;
  const i16 golden = adres::dsp::cfoEstimateStf(rot, d);

  const ScheduledKernel sk = scheduleKernel(CfoCorrKernel::build());
  Fabric f;
  f.l1.loadBytes(0, samplesToBytes(rot));
  f.crf.poke(CfoCorrKernel::kSrc, 4 * static_cast<u32>(d));
  f.crf.poke(CfoCorrKernel::kSrcLag, 4 * static_cast<u32>(d + 16));
  f.crf.poke(CfoCorrKernel::kIdx, 0);
  f.crf.poke(CfoCorrKernel::kSplat, dsp::lanes::splat(8192));
  (void)f.array.run(sk.config, CfoCorrKernel::trips(64));

  const adres::cint16 z = dsp::lanes::fold(f.crf.peek(CfoCorrKernel::kAcc));
  const i16 ang = static_cast<i16>(adres::dsp::atan2Turns(z.im, z.re));
  EXPECT_EQ(static_cast<i16>(ang / 16), golden);
}

TEST(XcorrKernel, SixteenHypothesesMatchGolden) {
  // Signal: silence + LTF field; search the 16 positions starting at 76.
  std::vector<adres::cint16> sig(50, adres::cint16{});
  const auto ltf = adres::dsp::ltfField();
  sig.insert(sig.end(), ltf.begin(), ltf.end());
  sig.resize(400, adres::cint16{});
  const int from = 76;  // true peak at 82

  // Conjugated broadcast reference table.
  const auto& ref = adres::dsp::ltfSymbolTime();
  std::vector<adres::cint16> refBroadcast;
  for (const auto& v : ref) {
    refBroadcast.push_back(v.conj());
    refBroadcast.push_back(v.conj());
  }

  const ScheduledKernel sk = scheduleKernel(XcorrKernel::build());
  Fabric f;
  f.l1.loadBytes(0, samplesToBytes(sig));
  f.l1.loadBytes(0x4000, samplesToBytes(refBroadcast));
  f.crf.poke(XcorrKernel::kRef, 0x4000);
  f.crf.poke(reg::kConst0, dsp::lanes::splat(2048));

  u64 totalCycles = 0;
  for (int half = 0; half < 2; ++half) {
    f.crf.poke(XcorrKernel::kSrc, 4 * static_cast<u32>(from + 8 * half));
    for (int j = 0; j < 4; ++j) f.crf.poke(XcorrKernel::kAccBase + j, 0);
    const CgaRunResult r = f.array.run(sk.config, XcorrKernel::kTrips);
    totalCycles += r.cycles;
    for (int j = 0; j < 4; ++j) {
      const Word acc = f.crf.peek(XcorrKernel::kAccBase + j);
      const int d = from + 8 * half + 2 * j;
      EXPECT_EQ(unpackC(acc, 0), adres::dsp::xcorrAt(sig, d)) << "d=" << d;
      EXPECT_EQ(unpackC(acc, 1), adres::dsp::xcorrAt(sig, d + 1)) << "d=" << d + 1;
    }
  }
  // Both launches together should stay in the paper's xcorr cycle regime
  // (280 cycles on the authors' toolchain; our scheduler maps it within a
  // few x of that — see EXPERIMENTS.md).
  EXPECT_LT(totalCycles, 2000u) << "II=" << sk.ii << " moves=" << sk.routeMoves;
}

}  // namespace
}  // namespace adres::sdr
