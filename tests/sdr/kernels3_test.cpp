// Batch 3: sample ordering, channel estimation, equalizer coefficients,
// SDM detection and QAM-64 demod kernels — bit-exact against dsp/ models.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/lanes.hpp"
#include "dsp/mimo.hpp"
#include "dsp/qam.hpp"
#include "dsp/trig.hpp"
#include "sdr/kernels.hpp"
#include "sdr/tables.hpp"
#include "testutil.hpp"

namespace adres::sdr {
namespace {

struct Fabric {
  CentralRegFile crf;
  Scratchpad l1;
  ConfigMemory cfg;
  ActivityCounters act;
  CgaArray array{crf, l1, cfg, act};
};

std::vector<u8> samplesToBytes(const std::vector<cint16>& s) {
  std::vector<u8> out;
  for (const auto& v : s) {
    out.push_back(static_cast<u8>(static_cast<u16>(v.re)));
    out.push_back(static_cast<u8>(static_cast<u16>(v.re) >> 8));
    out.push_back(static_cast<u8>(static_cast<u16>(v.im)));
    out.push_back(static_cast<u8>(static_cast<u16>(v.im) >> 8));
  }
  return out;
}

std::vector<u8> wordsToBytes(const std::vector<Word>& ws) {
  std::vector<u8> out;
  for (Word w : ws)
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(w >> (8 * i)));
  return out;
}

std::vector<u8> u16ToBytes(const std::vector<u16>& vs) {
  std::vector<u8> out;
  for (u16 v : vs) {
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
  }
  return out;
}

cint16 readC(Scratchpad& l1, u32 addr) {
  const u32 w = l1.read32(addr);
  return {static_cast<i16>(w & 0xFFFF), static_cast<i16>(w >> 16)};
}

std::vector<cint16> randomSpectrum(Rng& rng, int div = 4) {
  std::vector<cint16> s(64);
  for (auto& v : s)
    v = {static_cast<i16>(static_cast<i16>(rng.next()) / div),
         static_cast<i16>(static_cast<i16>(rng.next()) / div)};
  return s;
}

TEST(InterleaveKernel, GathersUsedTones) {
  Rng rng(3);
  const auto s0 = randomSpectrum(rng);
  const auto s1 = randomSpectrum(rng);
  Fabric f;
  f.l1.loadBytes(0x1000, samplesToBytes(s0));
  f.l1.loadBytes(0x1100, samplesToBytes(s1));
  f.l1.loadBytes(0x5000, u16ToBytes(usedBinByteOffsets()));
  const ScheduledKernel sk = scheduleKernel(InterleaveKernel::build());
  f.crf.poke(InterleaveKernel::kBase0, 0x1000);
  f.crf.poke(InterleaveKernel::kBase1, 0x1100);
  f.crf.poke(InterleaveKernel::kTab, 0x5000);
  f.crf.poke(InterleaveKernel::kOut, 0x2000);
  (void)f.array.run(sk.config, InterleaveKernel::kTrips);

  const auto used0 = dsp::gatherUsedCarriers(s0);
  const auto used1 = dsp::gatherUsedCarriers(s1);
  for (int t = 0; t < 52; ++t) {
    EXPECT_EQ(readC(f.l1, 0x2000 + 8 * static_cast<u32>(t)), used0[static_cast<std::size_t>(t)]);
    EXPECT_EQ(readC(f.l1, 0x2000 + 8 * static_cast<u32>(t) + 4), used1[static_cast<std::size_t>(t)]);
  }
}

/// Builds interleaved used-tone buffers from two spectra (as the
/// interleave kernel would) into the given L1 address.
void loadInterleaved(Fabric& f, u32 addr, const std::vector<cint16>& a0,
                     const std::vector<cint16>& a1) {
  const auto u0 = dsp::gatherUsedCarriers(a0);
  const auto u1 = dsp::gatherUsedCarriers(a1);
  std::vector<Word> ws(52);
  for (int t = 0; t < 52; ++t)
    ws[static_cast<std::size_t>(t)] =
        packC2(u0[static_cast<std::size_t>(t)], u1[static_cast<std::size_t>(t)]);
  f.l1.loadBytes(addr, wordsToBytes(ws));
}

TEST(ChestKernel, MatchesGoldenEstimate) {
  Rng rng(9);
  std::array<std::vector<cint16>, 2> l1s{randomSpectrum(rng), randomSpectrum(rng)};
  std::array<std::vector<cint16>, 2> l2s{randomSpectrum(rng), randomSpectrum(rng)};
  const auto golden = dsp::estimateChannel(l1s, l2s);

  Fabric f;
  loadInterleaved(f, 0x1000, l1s[0], l1s[1]);
  loadInterleaved(f, 0x1200, l2s[0], l2s[1]);
  f.l1.loadBytes(0x5000, wordsToBytes(ltfSignSplats()));
  const ScheduledKernel sk = scheduleKernel(ChestKernel::build());
  f.crf.poke(ChestKernel::kLtf1, 0x1000);
  f.crf.poke(ChestKernel::kLtf2, 0x1200);
  f.crf.poke(ChestKernel::kSign, 0x5000);
  f.crf.poke(ChestKernel::kOut, 0x3000);
  const CgaRunResult r = f.array.run(sk.config, ChestKernel::kTrips);

  for (int t = 0; t < 52; ++t) {
    const u32 base = 0x3000 + 16 * static_cast<u32>(t);
    EXPECT_EQ(readC(f.l1, base + 0), golden[static_cast<std::size_t>(t)].h[0][0]) << t;
    EXPECT_EQ(readC(f.l1, base + 4), golden[static_cast<std::size_t>(t)].h[1][0]) << t;
    EXPECT_EQ(readC(f.l1, base + 8), golden[static_cast<std::size_t>(t)].h[0][1]) << t;
    EXPECT_EQ(readC(f.l1, base + 12), golden[static_cast<std::size_t>(t)].h[1][1]) << t;
  }
  EXPECT_LT(r.cycles, 900u) << "chest II=" << sk.ii;
}

/// Writes a chest-layout H buffer for the given estimates.
void loadChestLayout(Fabric& f, u32 addr, const std::vector<dsp::ChannelEst>& est) {
  std::vector<Word> ws;
  for (const auto& e : est) {
    ws.push_back(packC2(e.h[0][0], e.h[1][0]));
    ws.push_back(packC2(e.h[0][1], e.h[1][1]));
  }
  f.l1.loadBytes(addr, wordsToBytes(ws));
}

std::vector<dsp::ChannelEst> randomEstimates(Rng& rng) {
  std::vector<dsp::ChannelEst> est(52);
  for (auto& e : est)
    for (int i = 0; i < 2; ++i)
      for (int j = 0; j < 2; ++j)
        e.h[i][j] = {static_cast<i16>(static_cast<i16>(rng.next()) / 4),
                     static_cast<i16>(static_cast<i16>(rng.next()) / 4)};
  return est;
}

TEST(EqCoeffKernel, MatchesGoldenBitExact) {
  Rng rng(31);
  const auto est = randomEstimates(rng);
  Fabric f;
  loadChestLayout(f, 0x1000, est);
  const ScheduledKernel skN = scheduleKernel(EqCoeffKernel::buildNorm());
  const ScheduledKernel skA = scheduleKernel(EqCoeffKernel::buildApply());
  f.crf.poke(EqCoeffKernel::kH, 0x1000);
  f.crf.poke(EqCoeffKernel::kW, 0x4000);
  f.crf.poke(EqCoeffKernel::kMid, 0x8000);
  f.crf.poke(EqCoeffKernel::kAmp128, static_cast<u32>(dsp::kLtfAmpQ15) << 7);
  f.crf.poke(EqCoeffKernel::kC4096, 4096);
  f.crf.poke(40, 0);
  f.crf.poke(41, 32767);
  f.crf.poke(42, static_cast<u32>(static_cast<i32>(-32768)));
  CgaRunResult r = f.array.run(skN.config, EqCoeffKernel::kTrips);
  f.crf.poke(EqCoeffKernel::kH, 0x1000);  // re-seed pointers for phase 2
  const CgaRunResult r2 = f.array.run(skA.config, EqCoeffKernel::kTrips);
  r.cycles += r2.cycles;

  for (int t = 0; t < 52; ++t) {
    const dsp::EqMatrix g = dsp::equalizerCoeffOne(est[static_cast<std::size_t>(t)]);
    const u32 base = 0x4000 + 16 * static_cast<u32>(t);
    EXPECT_EQ(readC(f.l1, base + 0), g.w[0][0]) << "tone " << t;
    EXPECT_EQ(readC(f.l1, base + 4), g.w[0][1]) << "tone " << t;
    EXPECT_EQ(readC(f.l1, base + 8), g.w[1][0]) << "tone " << t;
    EXPECT_EQ(readC(f.l1, base + 12), g.w[1][1]) << "tone " << t;
  }
  // Table 2 shape: paper reports 636 cycles for equalize coeff calc.
  EXPECT_LT(r.cycles, 3000u) << "eqcoeff II=" << skN.ii << "+" << skA.ii;
}

TEST(CompKernel, MatchesGoldenSdmDetect) {
  Rng rng(17);
  const auto est = randomEstimates(rng);
  const auto eq = dsp::equalizerCoeffs(est);
  std::array<std::vector<cint16>, 2> rxUsed;
  for (auto& v : rxUsed) {
    v.resize(52);
    for (auto& s : v)
      s = {static_cast<i16>(static_cast<i16>(rng.next()) / 4),
           static_cast<i16>(static_cast<i16>(rng.next()) / 4)};
  }
  const auto golden = dsp::sdmDetect(eq, rxUsed);

  Fabric f;
  // Interleaved rx words and W matrices in the eqcoeff layout.
  std::vector<Word> rxw(52), ww;
  for (int t = 0; t < 52; ++t) {
    rxw[static_cast<std::size_t>(t)] =
        packC2(rxUsed[0][static_cast<std::size_t>(t)], rxUsed[1][static_cast<std::size_t>(t)]);
    ww.push_back(packC2(eq[static_cast<std::size_t>(t)].w[0][0], eq[static_cast<std::size_t>(t)].w[0][1]));
    ww.push_back(packC2(eq[static_cast<std::size_t>(t)].w[1][0], eq[static_cast<std::size_t>(t)].w[1][1]));
  }
  f.l1.loadBytes(0x1000, wordsToBytes(rxw));
  f.l1.loadBytes(0x2000, wordsToBytes(ww));
  const ScheduledKernel sk = scheduleKernel(CompKernel::build());
  f.crf.poke(CompKernel::kRx, 0x1000);
  f.crf.poke(CompKernel::kWMat, 0x2000);
  f.crf.poke(CompKernel::kOut0, 0x6000);
  f.crf.poke(CompKernel::kOut1, 0x6400);
  const CgaRunResult r = f.array.run(sk.config, CompKernel::kTrips);

  for (int t = 0; t < 52; ++t) {
    EXPECT_EQ(readC(f.l1, 0x6000 + 4 * static_cast<u32>(t)),
              golden[0][static_cast<std::size_t>(t)]) << t;
    EXPECT_EQ(readC(f.l1, 0x6400 + 4 * static_cast<u32>(t)),
              golden[1][static_cast<std::size_t>(t)]) << t;
  }
  // Paper: "comp" runs in 219 cycles for two merged symbols.
  EXPECT_LT(r.cycles, 800u) << "comp II=" << sk.ii;
}

// The SIMD slicing recipe used by the demod kernel must equal the generic
// sliceLevel for every 16-bit input (exhaustive).
TEST(DemodSlicing, RecipeEqualsSliceLevelExhaustive) {
  const i16 unit = dsp::qamUnit(dsp::Modulation::kQam64);
  ASSERT_EQ(unit, 800);
  for (i32 v = -32768; v <= 32767; ++v) {
    // Kernel recipe.
    const i16 x1 = satAdd16(static_cast<i16>(v), 6400);
    const i16 x2 = static_cast<i16>(x1 >> 6);
    const i16 x3 = satSub16(x2, 12);
    i16 idx = mulQ15(x3, 1312);
    if (idx < 0) idx = 0;
    if (idx > 7) idx = 7;
    // Golden demap: recover the level index from the mapped bits.
    std::vector<u8> bits(6);
    dsp::qamDemap(dsp::Modulation::kQam64,
                  {static_cast<i16>(v), static_cast<i16>(-7 * unit)}, bits, 0);
    u32 bv = 0;
    for (int i = 0; i < 3; ++i) bv |= static_cast<u32>(bits[static_cast<std::size_t>(i)]) << i;
    // gray(idx) must equal the golden bits.
    const u32 gray = static_cast<u32>(idx) ^ (static_cast<u32>(idx) >> 1);
    ASSERT_EQ(gray, bv) << "v=" << v;
  }
}

TEST(DemodKernel, GrayWordsMatchGoldenBits) {
  Rng rng(77);
  // Detected stream: noisy QAM-64 symbols at 52 used positions.
  std::vector<u8> bits(48 * 6);
  for (auto& bb : bits) bb = rng.bit();
  const auto syms = dsp::qamModulate(dsp::Modulation::kQam64, bits);
  const cint16 derot = dsp::phasorQ15(65000);
  const cint16 rerot = dsp::phasorQ15(536);  // approximately derot^-1

  std::vector<cint16> det(52, cint16{});
  const auto dpos = dataToneByteOffsets();
  for (int d = 0; d < 48; ++d) {
    cint16 s = syms[static_cast<std::size_t>(d)] * rerot;  // pre-rotate
    s.re = satAdd16(s.re, static_cast<i16>(rng.below(60)) - 30);
    s.im = satAdd16(s.im, static_cast<i16>(rng.below(60)) - 30);
    det[dpos[static_cast<std::size_t>(d)] / 4] = s;
  }

  Fabric f;
  f.l1.loadBytes(0x1000, samplesToBytes(det));
  f.l1.loadBytes(0x5000, u16ToBytes(dataToneByteOffsets()));
  const ScheduledKernel sk = scheduleKernel(DemodKernel::build());
  f.crf.poke(DemodKernel::kDet, 0x1000);
  f.crf.poke(DemodKernel::kTab, 0x5000);
  f.crf.poke(DemodKernel::kOut, 0x7000);
  f.crf.poke(DemodKernel::kDerot, packC2(derot, derot));
  f.crf.poke(DemodKernel::kOffW, dsp::lanes::splat(6400));
  f.crf.poke(DemodKernel::kC12, dsp::lanes::splat(12));
  f.crf.poke(DemodKernel::kMul, dsp::lanes::splat(1312));
  f.crf.poke(DemodKernel::kZero, dsp::lanes::splat(0));
  f.crf.poke(DemodKernel::kSeven, dsp::lanes::splat(7));
  (void)f.array.run(sk.config, DemodKernel::kTrips);

  for (int d = 0; d < 48; ++d) {
    // Golden: derotate + demap.
    const cint16 y = det[dpos[static_cast<std::size_t>(d)] / 4] * derot;
    std::vector<u8> gb(6);
    dsp::qamDemap(dsp::Modulation::kQam64, y, gb, 0);
    u32 gI = 0, gQ = 0;
    for (int i = 0; i < 3; ++i) {
      gI |= static_cast<u32>(gb[static_cast<std::size_t>(i)]) << i;
      gQ |= static_cast<u32>(gb[static_cast<std::size_t>(i + 3)]) << i;
    }
    const u32 w = f.l1.read32(0x7000 + 4 * static_cast<u32>(d));
    EXPECT_EQ(w & 0xFFFF, gI) << "tone " << d;
    EXPECT_EQ(w >> 16, gQ) << "tone " << d;
  }
}

// QAM-16 variant: the comparison-network recipe (three saturating
// threshold tests summed into a level index) must equal the generic
// sliceLevel for every 16-bit input (exhaustive).
TEST(DemodSlicing, Qam16RecipeEqualsSliceLevelExhaustive) {
  const i16 unit = dsp::qamUnit(dsp::Modulation::kQam16);
  ASSERT_EQ(unit, 1650);
  const i16 thr = static_cast<i16>(2 * unit);  // 3300: level boundaries
  for (i32 v = -32768; v <= 32767; ++v) {
    // Kernel recipe: arithmetic >>15 turns each comparison into -1/0.
    const i16 a = static_cast<i16>(satAdd16(static_cast<i16>(v), thr) >> 15);
    const i16 b = static_cast<i16>(static_cast<i16>(v) >> 15);
    const i16 c = static_cast<i16>(satSub16(static_cast<i16>(v), thr) >> 15);
    const i16 idx = static_cast<i16>(3 + a + b + c);
    ASSERT_GE(idx, 0);
    ASSERT_LE(idx, 3);
    // Golden demap: recover the level index from the mapped bits.
    std::vector<u8> bits(4);
    dsp::qamDemap(dsp::Modulation::kQam16,
                  {static_cast<i16>(v), static_cast<i16>(-3 * unit)}, bits, 0);
    u32 bv = 0;
    for (int i = 0; i < 2; ++i) bv |= static_cast<u32>(bits[static_cast<std::size_t>(i)]) << i;
    const u32 gray = static_cast<u32>(idx) ^ (static_cast<u32>(idx) >> 1);
    ASSERT_EQ(gray, bv) << "v=" << v;
  }
}

TEST(DemodKernel, Qam16GrayWordsMatchGoldenBits) {
  Rng rng(78);
  std::vector<u8> bits(48 * 4);
  for (auto& bb : bits) bb = rng.bit();
  const auto syms = dsp::qamModulate(dsp::Modulation::kQam16, bits);
  const cint16 derot = dsp::phasorQ15(65000);
  const cint16 rerot = dsp::phasorQ15(536);  // approximately derot^-1

  std::vector<cint16> det(52, cint16{});
  const auto dpos = dataToneByteOffsets();
  for (int d = 0; d < 48; ++d) {
    cint16 s = syms[static_cast<std::size_t>(d)] * rerot;  // pre-rotate
    s.re = satAdd16(s.re, static_cast<i16>(rng.below(60)) - 30);
    s.im = satAdd16(s.im, static_cast<i16>(rng.below(60)) - 30);
    det[dpos[static_cast<std::size_t>(d)] / 4] = s;
  }

  Fabric f;
  f.l1.loadBytes(0x1000, samplesToBytes(det));
  f.l1.loadBytes(0x5000, u16ToBytes(dataToneByteOffsets()));
  const ScheduledKernel sk = scheduleKernel(DemodKernel::build16());
  f.crf.poke(DemodKernel::kDet, 0x1000);
  f.crf.poke(DemodKernel::kTab, 0x5000);
  f.crf.poke(DemodKernel::kOut, 0x7000);
  f.crf.poke(DemodKernel::kDerot, packC2(derot, derot));
  f.crf.poke(DemodKernel::kThr, dsp::lanes::splat(3300));
  f.crf.poke(DemodKernel::kThree, dsp::lanes::splat(3));
  (void)f.array.run(sk.config, DemodKernel::kTrips);

  for (int d = 0; d < 48; ++d) {
    const cint16 y = det[dpos[static_cast<std::size_t>(d)] / 4] * derot;
    std::vector<u8> gb(4);
    dsp::qamDemap(dsp::Modulation::kQam16, y, gb, 0);
    u32 gI = 0, gQ = 0;
    for (int i = 0; i < 2; ++i) {
      gI |= static_cast<u32>(gb[static_cast<std::size_t>(i)]) << i;
      gQ |= static_cast<u32>(gb[static_cast<std::size_t>(i + 2)]) << i;
    }
    const u32 w = f.l1.read32(0x7000 + 4 * static_cast<u32>(d));
    EXPECT_EQ(w & 0xFFFF, gI) << "tone " << d;
    EXPECT_EQ(w >> 16, gQ) << "tone " << d;
  }
}

}  // namespace
}  // namespace adres::sdr
