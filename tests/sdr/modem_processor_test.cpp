// End-to-end: the full receiver program on the simulated processor decodes
// a transmitted packet, and its region profiles have the Table 2 shape.
#include <gtest/gtest.h>

#include "dsp/channel.hpp"
#include "sdr/modem_program.hpp"

namespace adres::sdr {
namespace {

TEST(ModemOnProcessor, DecodesCleanPacket) {
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = 4;
  Rng rng(5);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);

  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);

  const ModemOnProcessor m = buildModemProgram(cfg);
  Processor proc;
  const ProcessorRxResult res = runModemOnProcessor(proc, m, rx);

  EXPECT_TRUE(res.detected);
  EXPECT_NEAR(static_cast<int>(res.ltfStart), 190, 3) << "fine timing";
  ASSERT_EQ(res.bits.size(), pkt.bits.size());
  EXPECT_EQ(dsp::bitErrors(res.bits, pkt.bits), 0)
      << "clean channel must decode error-free";
}

TEST(ModemOnProcessor, DecodesCleanQam16Packet) {
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam16;
  cfg.numSymbols = 4;
  Rng rng(6);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);

  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);

  const ModemOnProcessor m = buildModemProgram(cfg);
  Processor proc;
  const ProcessorRxResult res = runModemOnProcessor(proc, m, rx);

  EXPECT_TRUE(res.detected);
  ASSERT_EQ(res.bits.size(), pkt.bits.size());
  EXPECT_EQ(dsp::bitErrors(res.bits, pkt.bits), 0)
      << "clean channel must decode QAM-16 error-free";
}

TEST(ModemOnProcessor, DecodesMultipathPacket) {
  dsp::ModemConfig cfg;
  cfg.numSymbols = 4;
  Rng rng(9);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.taps = 2;
  cc.snrDb = 38;
  cc.cfoPpm = 5;
  cc.seed = 5;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);

  const ModemOnProcessor m = buildModemProgram(cfg);
  Processor proc;
  const ProcessorRxResult res = runModemOnProcessor(proc, m, rx);
  ASSERT_TRUE(res.detected);
  const double ber = static_cast<double>(dsp::bitErrors(res.bits, pkt.bits)) /
                     static_cast<double>(pkt.bits.size());
  EXPECT_LT(ber, 0.01) << "multipath at 38 dB";
}

TEST(ModemOnProcessor, RunOptionsCycleBudgetReportsStopReason) {
  dsp::ModemConfig cfg;
  cfg.numSymbols = 2;
  Rng rng(5);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);

  const ModemOnProcessor m = buildModemProgram(cfg);
  Processor proc;
  RxRunOptions opts;
  opts.maxCycles = 1000;  // far below a full decode
  const ProcessorRxResult res = runModemOnProcessor(proc, m, rx, opts);
  EXPECT_EQ(res.stop, StopReason::kMaxCycles);
  EXPECT_FALSE(res.halted());
  EXPECT_FALSE(res.detected);
  EXPECT_TRUE(res.bits.empty());
  EXPECT_LE(res.cycles, 1000u + 64u) << "stops near the budget";

  // The same processor finishes the packet with the default budget.
  Processor fresh;
  const ProcessorRxResult full = runModemOnProcessor(fresh, m, rx);
  EXPECT_EQ(full.stop, StopReason::kHalt);
  EXPECT_TRUE(full.detected);
  EXPECT_EQ(dsp::bitErrors(full.bits, pkt.bits), 0);
}

TEST(ModemOnProcessor, ProfileHasTable2Shape) {
  dsp::ModemConfig cfg;
  cfg.numSymbols = 4;
  Rng rng(5);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);

  const ModemOnProcessor m = buildModemProgram(cfg);
  Processor proc;
  (void)runModemOnProcessor(proc, m, rx);

  const auto& profs = proc.profiles();
  const auto get = [&](const std::string& name) -> const RegionProfile& {
    return profs.at(m.program.regionId(name));
  };

  // Every Table 2 kernel region exists and consumed cycles.
  for (const char* name :
       {"acorr", "fshift", "xcorr", "fft", "remove zero carriers",
        "freq offset estimation", "freq offset compensation",
        "sample ordering", "SDM processing", "sample reordering",
        "equalize coeff. calc.", "data shuffle", "tracking", "comp",
        "demod QAM64", "non-kernel code"}) {
    ASSERT_GT(get(name).cycles, 0u) << name;
  }

  // Mode shape: the CGA-dominated kernels vs the VLIW ones (Table 2).
  EXPECT_EQ(get("SDM processing").mode(), "CGA");
  EXPECT_EQ(get("comp").mode(), "CGA");
  EXPECT_EQ(get("non-kernel code").mode(), "VLIW");
  EXPECT_EQ(get("tracking").mode(), "VLIW");
  // CGA kernels reach much higher IPC than VLIW glue.
  EXPECT_GT(get("comp").ipc(), 2.0);
  EXPECT_LT(get("non-kernel code").ipc(), 3.0);
  // The paper's headline: most time is spent in CGA mode.
  const auto& act = proc.activity();
  EXPECT_GT(act.cgaCycles, act.vliwCycles / 4)
      << "substantial CGA-mode share";
}

}  // namespace
}  // namespace adres::sdr
