// Shared Table 2 kernel fixture for the timing-golden test, the fast-path
// A/B test, the golden-dump tool and bench_simspeed.
//
// Every mapped kernel of the MIMO-OFDM receiver is scheduled once and given
// a deterministic standalone environment: L1 pre-filled with a fixed
// pseudo-random pattern, the real gather/twiddle tables at fixed addresses,
// and the kernel's live-in registers set the way the modem glue would set
// them (aligned buffer pointers, zeroed indices/accumulators, real packed
// constants).  Data *values* are arbitrary — every compute op is total
// (shifts masked, divide-by-zero defined) — but addresses are always valid
// and aligned, so runs are deterministic and assertion-free.
//
// Uses only the stable CgaArray API so the same header compiles against the
// pre-fast-path simulator (baseline capture for BENCH_simspeed.json).
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cga/array.hpp"
#include "common/rng.hpp"
#include "dsp/lanes.hpp"
#include "dsp/mimo.hpp"
#include "sched/modulo.hpp"
#include "sdr/kernels.hpp"
#include "sdr/tables.hpp"

namespace adres::testsupport {

struct Fabric {
  CentralRegFile crf;
  Scratchpad l1;
  ConfigMemory cfg;
  ActivityCounters act;
  CgaArray array{crf, l1, cfg, act};
};

struct KernelCase {
  std::string name;
  KernelConfig config;
  u32 trips = 0;
  std::function<void(Fabric&)> setup;  ///< pokes live-in CDRF registers
};

// L1 address plan of the standalone environment.
namespace fixaddr {
inline constexpr u32 kPatternEnd = 0x5000;  ///< [0x100, kPatternEnd) = pattern
inline constexpr u32 kRevTab = 0x5000;
inline constexpr u32 kUsedTab = 0x5100;
inline constexpr u32 kDataTab = 0x5200;
inline constexpr u32 kSignTab = 0x5300;
inline constexpr u32 kLtfRef = 0x5600;
inline constexpr u32 kStageTabBase = 0x6000;  ///< per stage: +0x800, tw at +0x400
inline constexpr u32 kOutBase = 0x10000;      ///< outputs land here (zeroed)
inline constexpr u32 kChecksumEnd = 0x20000;  ///< checksummed L1 prefix
}  // namespace fixaddr

inline void writeU16Table(Scratchpad& l1, u32 addr, const std::vector<u16>& t) {
  for (std::size_t i = 0; i < t.size(); ++i)
    l1.write16(addr + 2 * static_cast<u32>(i), t[i]);
}

inline void writeWordTable(Scratchpad& l1, u32 addr, const std::vector<Word>& t) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    l1.write32(addr + 8 * static_cast<u32>(i), static_cast<u32>(t[i]));
    l1.write32(addr + 8 * static_cast<u32>(i) + 4, static_cast<u32>(t[i] >> 32));
  }
}

/// Clears the fabric and loads the deterministic L1 image (pattern + tables).
inline void prepareFabric(Fabric& f) {
  f.crf.clear();
  f.array.clearState();
  f.l1.arbiter().reset();
  Rng rng(0xADE5F1D0u);
  for (u32 a = 0x100; a < fixaddr::kPatternEnd; a += 4)
    f.l1.write32(a, static_cast<u32>(rng.next()));
  for (u32 a = fixaddr::kPatternEnd; a < fixaddr::kChecksumEnd; a += 4)
    f.l1.write32(a, 0);
  writeU16Table(f.l1, fixaddr::kRevTab, sdr::bitrevByteOffsets());
  writeU16Table(f.l1, fixaddr::kUsedTab, sdr::usedBinByteOffsets());
  writeU16Table(f.l1, fixaddr::kDataTab, sdr::dataToneByteOffsets());
  writeWordTable(f.l1, fixaddr::kSignTab, sdr::ltfSignSplats());
  writeWordTable(f.l1, fixaddr::kLtfRef, sdr::ltfConjBroadcast());
  for (int s = 2; s <= 6; ++s) {
    const sdr::FftStageTables t = sdr::fftStageTables(s, 4);
    const u32 base = fixaddr::kStageTabBase + 0x800u * static_cast<u32>(s - 2);
    writeU16Table(f.l1, base, t.aOffsets);
    writeWordTable(f.l1, base + 0x400, t.twiddlePairs);
  }
  f.l1.resetStats();
  f.cfg.resetStats();
  f.crf.resetStats();
  for (int fu = 0; fu < kCgaFus; ++fu) f.array.localRf(fu).resetStats();
  f.act.reset();
}

/// FNV-1a over the architectural state the kernels can touch.  Reads L1
/// through the stats-counting accessors — capture stats before calling.
inline u64 fabricChecksum(Fabric& f) {
  u64 h = 1469598103934665603ull;
  auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (int fu = 0; fu < kCgaFus; ++fu) {
    mix(f.array.outputReg(fu));
    for (int r = 0; r < kLocalRfRegs; ++r) mix(f.array.localRf(fu).peek(r));
  }
  for (int r = 0; r < kCdrfRegs; ++r) mix(f.crf.peek(r));
  for (int p = 0; p < kCprfRegs; ++p) mix(f.crf.peekPred(p) ? 1 : 0);
  for (u32 a = 0; a < fixaddr::kChecksumEnd; a += 4) mix(f.l1.read32(a));
  return h;
}

/// All Table 2 kernels with canonical trip counts and modem-like setups.
inline std::vector<KernelCase> tableTwoKernelCases() {
  using namespace sdr;
  using dsp::lanes::splat;
  std::vector<KernelCase> cases;
  auto add = [&cases](std::string name, KernelDfg dfg, u32 trips,
                      std::function<void(Fabric&)> setup) {
    KernelCase c;
    c.name = std::move(name);
    c.config = scheduleKernel(dfg).config;
    c.trips = trips;
    c.setup = std::move(setup);
    cases.push_back(std::move(c));
  };

  add("acorr", AcorrKernel::build(), AcorrKernel::kTrips, [](Fabric& f) {
    f.crf.poke(AcorrKernel::kSrc, 0x100);
    f.crf.poke(AcorrKernel::kSrcLag, 0x100 + 64);
    f.crf.poke(AcorrKernel::kIdx, 0);
    f.crf.poke(AcorrKernel::kSplat, splat(8192));
    f.crf.poke(AcorrKernel::kAccP, 0);
    f.crf.poke(AcorrKernel::kAccE1, 0);
    f.crf.poke(AcorrKernel::kAccE2, 0);
  });
  add("cfo", CfoCorrKernel::build(), CfoCorrKernel::trips(64), [](Fabric& f) {
    f.crf.poke(CfoCorrKernel::kSrc, 0x400);
    f.crf.poke(CfoCorrKernel::kSrcLag, 0x400 + 64);
    f.crf.poke(CfoCorrKernel::kIdx, 0);
    f.crf.poke(CfoCorrKernel::kSplat, splat(8192));
    f.crf.poke(CfoCorrKernel::kAcc, 0);
  });
  add("fshift", FshiftKernel::build(), FshiftKernel::trips(160), [](Fabric& f) {
    f.crf.poke(FshiftKernel::kSrc, 0x800);
    f.crf.poke(FshiftKernel::kDst, fixaddr::kOutBase);
    f.crf.poke(FshiftKernel::kPhA, splat(23170));
    f.crf.poke(FshiftKernel::kPhB, splat(-23170));
    f.crf.poke(FshiftKernel::kW4, splat(32767));
    f.crf.poke(FshiftKernel::kIdx, 0);
  });
  add("xcorr", XcorrKernel::build(), XcorrKernel::kTrips, [](Fabric& f) {
    f.crf.poke(XcorrKernel::kSrc, 0xC00);
    f.crf.poke(XcorrKernel::kRef, fixaddr::kLtfRef);
    for (int j = 0; j < 4; ++j) f.crf.poke(XcorrKernel::kAccBase + j, 0);
  });
  add("bitrev", BitrevKernel::build(), BitrevKernel::trips(1), [](Fabric& f) {
    f.crf.poke(BitrevKernel::kIn, 0x1000);
    f.crf.poke(BitrevKernel::kOut, fixaddr::kOutBase + 0x400);
    f.crf.poke(BitrevKernel::kIdxTab, fixaddr::kRevTab);
  });
  add("fft stage1", FftStage1Kernel::build(), FftStage1Kernel::trips(4),
      [](Fabric& f) { f.crf.poke(FftStage1Kernel::kBuf, 0x2000); });
  for (int s = 2; s <= 6; ++s) {
    const FftStageTables t = fftStageTables(s, 4);
    add("fft stage" + std::to_string(s),
        FftStageKernel::build(t.halfBytes, /*scaleX8=*/s == 6),
        FftStageKernel::trips(4), [s](Fabric& f) {
          const u32 base = fixaddr::kStageTabBase + 0x800u * static_cast<u32>(s - 2);
          f.crf.poke(FftStageKernel::kBuf, 0x2000);
          f.crf.poke(FftStageKernel::kOffTab, base);
          f.crf.poke(FftStageKernel::kTwTab, base + 0x400);
        });
  }
  add("interleave", InterleaveKernel::build(), InterleaveKernel::kTrips,
      [](Fabric& f) {
        f.crf.poke(InterleaveKernel::kBase0, 0x1400);
        f.crf.poke(InterleaveKernel::kBase1, 0x1800);
        f.crf.poke(InterleaveKernel::kTab, fixaddr::kUsedTab);
        f.crf.poke(InterleaveKernel::kOut, fixaddr::kOutBase + 0x800);
      });
  add("chest", ChestKernel::build(), ChestKernel::kTrips, [](Fabric& f) {
    f.crf.poke(ChestKernel::kLtf1, 0x1400);
    f.crf.poke(ChestKernel::kLtf2, 0x1800);
    f.crf.poke(ChestKernel::kSign, fixaddr::kSignTab);
    f.crf.poke(ChestKernel::kOut, fixaddr::kOutBase + 0x1000);
  });
  add("eqnorm", EqCoeffKernel::buildNorm(), EqCoeffKernel::kTrips,
      [](Fabric& f) {
        f.crf.poke(EqCoeffKernel::kH, 0x2800);
        f.crf.poke(EqCoeffKernel::kMid, fixaddr::kOutBase + 0x2000);
        f.crf.poke(EqCoeffKernel::kAmp128, dsp::kLtfAmpQ15 << 7);
        f.crf.poke(EqCoeffKernel::kC4096, 4096);
      });
  add("eqapply", EqCoeffKernel::buildApply(), EqCoeffKernel::kTrips,
      [](Fabric& f) {
        f.crf.poke(EqCoeffKernel::kH, 0x2800);
        f.crf.poke(EqCoeffKernel::kMid, 0x3000);  // pattern records
        f.crf.poke(EqCoeffKernel::kW, fixaddr::kOutBase + 0x2800);
        f.crf.poke(EqCoeffKernel::kAmp128, dsp::kLtfAmpQ15 << 7);
        f.crf.poke(EqCoeffKernel::kC4096, 4096);
      });
  add("comp", CompKernel::build(), CompKernel::kTrips, [](Fabric& f) {
    f.crf.poke(CompKernel::kRx, 0x3800);
    f.crf.poke(CompKernel::kWMat, 0x4000);
    f.crf.poke(CompKernel::kOut0, fixaddr::kOutBase + 0x3000);
    f.crf.poke(CompKernel::kOut1, fixaddr::kOutBase + 0x3400);
  });
  add("demod", DemodKernel::build(), DemodKernel::kTrips, [](Fabric& f) {
    f.crf.poke(DemodKernel::kDet, 0x4800);
    f.crf.poke(DemodKernel::kTab, fixaddr::kDataTab);
    f.crf.poke(DemodKernel::kOut, fixaddr::kOutBase + 0x3800);
    f.crf.poke(DemodKernel::kDerot, splat(23170));
    f.crf.poke(DemodKernel::kOffW, splat(6400));
    f.crf.poke(DemodKernel::kC12, splat(12));
    f.crf.poke(DemodKernel::kMul, splat(1312));
    f.crf.poke(DemodKernel::kZero, splat(0));
    f.crf.poke(DemodKernel::kSeven, splat(7));
  });
  return cases;
}

}  // namespace adres::testsupport
