// Collectors shared by the timing-golden regression test and the
// timing_golden_dump generator: run every Table 2 kernel standalone and the
// full 2x2 modem, and reduce the timing-visible state to comparable rows.
#pragma once

#include <string>
#include <vector>

#include "dsp/channel.hpp"
#include "sdr/modem_program.hpp"
#include "support/kernel_fixture.hpp"

namespace adres::testsupport {

struct KernelGoldenRow {
  std::string name;
  u64 cycles = 0;
  u64 arrayCycles = 0;
  u64 stallCycles = 0;
  u64 ops = 0;
  u64 routeMoves = 0;
  u64 checksum = 0;  ///< fabricChecksum after the run (bit-exactness)
};

struct RegionGoldenRow {
  std::string name;
  u64 cycles = 0;
  u64 vliwCycles = 0;
  u64 cgaCycles = 0;
  u64 ops = 0;
  u64 entries = 0;
};

struct ModemGolden {
  bool detected = false;
  u32 ltfStart = 0;
  u64 cycles = 0;
  u64 bitsHash = 0;
  u64 countersHash = 0;  ///< hash over the adres.counters.v1-visible stats
  std::vector<RegionGoldenRow> regions;
};

inline u64 fnv1a(u64 h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}
inline constexpr u64 kFnvSeed = 1469598103934665603ull;

/// Runs every fixture kernel on a fresh fabric at `tier`; one row per
/// kernel.  The fixture is tier-independent: all exec tiers must reproduce
/// the identical rows (the golden test sweeps them).
inline std::vector<KernelGoldenRow> collectKernelGolden(
    ExecTier tier = defaultExecTier()) {
  std::vector<KernelGoldenRow> rows;
  for (const KernelCase& c : tableTwoKernelCases()) {
    Fabric f;
    prepareFabric(f);
    c.setup(f);
    const CgaRunResult r = f.array.run(c.config, c.trips, tier);
    KernelGoldenRow row;
    row.name = c.name;
    row.cycles = r.cycles;
    row.arrayCycles = r.arrayCycles;
    row.stallCycles = r.stallCycles;
    row.ops = r.ops;
    row.routeMoves = r.routeMoves;
    u64 h = kFnvSeed;
    h = fnv1a(h, f.l1.stats().reads);
    h = fnv1a(h, f.l1.stats().writes);
    h = fnv1a(h, f.l1.stats().conflicts);
    h = fnv1a(h, f.l1.stats().conflictCycles);
    h = fnv1a(h, f.act.cgaOps);
    h = fnv1a(h, f.act.simdOps);
    h = fnv1a(h, f.act.ops16);
    h = fnv1a(h, f.act.transports);
    h = fnv1a(h, f.act.cdrfCgaAccesses);
    h = fnv1a(h, f.act.l1CgaAccesses);
    h = fnv1a(h, fabricChecksum(f));
    row.checksum = h;
    rows.push_back(std::move(row));
  }
  return rows;
}

/// The bench_table2 scenario: QAM-64, 16 symbols, flat 40 dB channel with
/// 6 ppm CFO — the run whose region profile reproduces Table 2.
inline ModemGolden collectModemGolden(ExecTier tier = defaultExecTier()) {
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = 16;
  Rng rng(5);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);

  const sdr::ModemOnProcessor m = sdr::buildModemProgram(cfg);
  Processor proc;
  sdr::RxRunOptions opts;
  opts.exec.tier = tier;
  const sdr::ProcessorRxResult res = sdr::runModemOnProcessor(proc, m, rx, opts);

  ModemGolden g;
  g.detected = res.detected;
  g.ltfStart = res.ltfStart;
  g.cycles = res.cycles;
  u64 bh = kFnvSeed;
  for (u8 b : res.bits) bh = fnv1a(bh, b);
  g.bitsHash = bh;

  for (std::size_t id = 0; id < m.program.regionNames.size(); ++id) {
    const auto it = proc.profiles().find(static_cast<int>(id));
    RegionGoldenRow row;
    row.name = m.program.regionNames[id];
    if (it != proc.profiles().end()) {
      row.cycles = it->second.cycles;
      row.vliwCycles = it->second.vliwCycles;
      row.cgaCycles = it->second.cgaCycles;
      row.ops = it->second.ops;
      row.entries = it->second.entries;
    }
    g.regions.push_back(std::move(row));
  }

  // Everything the adres.counters.v1 dump is derived from: activity
  // counters, memory stats, RF stats, icache and config-memory stats.
  const auto& act = proc.activity();
  u64 h = kFnvSeed;
  h = fnv1a(h, act.cgaCycles);
  h = fnv1a(h, act.vliwCycles);
  h = fnv1a(h, act.sleepCycles);
  h = fnv1a(h, act.cgaStallCycles);
  h = fnv1a(h, act.vliwStallCycles);
  h = fnv1a(h, act.cgaOps);
  h = fnv1a(h, act.vliwOps);
  h = fnv1a(h, act.cgaRouteMoves);
  h = fnv1a(h, act.simdOps);
  h = fnv1a(h, act.ops16);
  h = fnv1a(h, act.transports);
  h = fnv1a(h, act.cdrfCgaAccesses);
  h = fnv1a(h, act.l1CgaAccesses);
  h = fnv1a(h, act.modeSwitches);
  h = fnv1a(h, proc.l1().stats().reads);
  h = fnv1a(h, proc.l1().stats().writes);
  h = fnv1a(h, proc.l1().stats().conflicts);
  h = fnv1a(h, proc.l1().stats().conflictCycles);
  h = fnv1a(h, proc.regs().stats().reads);
  h = fnv1a(h, proc.regs().stats().writes);
  h = fnv1a(h, proc.regs().predStats().reads);
  h = fnv1a(h, proc.regs().predStats().writes);
  h = fnv1a(h, proc.icache().stats().accesses);
  h = fnv1a(h, proc.icache().stats().misses);
  h = fnv1a(h, proc.configMem().stats().contextFetches);
  {
    const RegFileStats lrf = proc.cga().localRfTotals();
    h = fnv1a(h, lrf.reads);
    h = fnv1a(h, lrf.writes);
  }
  g.countersHash = h;
  return g;
}

}  // namespace adres::testsupport
