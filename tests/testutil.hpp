// Shared test helpers: golden-memory adapter and the schedule-vs-interpret
// equivalence harness used by scheduler and SDR kernel tests.
#pragma once

#include <gtest/gtest.h>

#include "cga/array.hpp"
#include "common/activity.hpp"
#include "sched/dfg.hpp"
#include "sched/modulo.hpp"

namespace adres {
namespace testutil {

/// ByteMemory over a Scratchpad, for the reference interpreter.
class ScratchpadMem : public ByteMemory {
 public:
  explicit ScratchpadMem(Scratchpad& l1) : l1_(l1) {}
  u32 load(u32 addr, int bytes) override {
    switch (bytes) {
      case 1: return l1_.read8(addr);
      case 2: return l1_.read16(addr);
      default: return l1_.read32(addr);
    }
  }
  void store(u32 addr, int bytes, u32 value) override {
    switch (bytes) {
      case 1: l1_.write8(addr, value); break;
      case 2: l1_.write16(addr, value); break;
      default: l1_.write32(addr, value); break;
    }
  }

 private:
  Scratchpad& l1_;
};

struct KernelRun {
  ScheduledKernel sk;
  CgaRunResult runResult;
};

/// Schedules `g`, executes it on a fresh CGA fabric against `l1`, and
/// checks CDRF live-outs and all touched memory against the reference
/// interpreter run on an identical memory image.  Returns scheduling and
/// run statistics for further assertions.
inline KernelRun checkKernelAgainstReference(
    const KernelDfg& g, u32 trips,
    const std::vector<std::pair<int, Word>>& liveIns,
    const std::vector<std::pair<u32, std::vector<u8>>>& memInit,
    u32 compareBytes) {
  // Scheduled execution.
  CentralRegFile crf;
  Scratchpad l1;
  ConfigMemory cfg;
  ActivityCounters act;
  CgaArray array(crf, l1, cfg, act);
  for (const auto& [addr, bytes] : memInit) l1.loadBytes(addr, bytes);
  for (const auto& [reg, v] : liveIns) crf.poke(reg, v);

  KernelRun out;
  out.sk = scheduleKernel(g);
  // Exercise the config round trip as the real load path does.
  const KernelConfig cfgDecoded = decodeKernel(encodeKernel(out.sk.config));
  out.runResult = array.run(cfgDecoded, trips);

  // Reference execution.
  Scratchpad goldenL1;
  for (const auto& [addr, bytes] : memInit) goldenL1.loadBytes(addr, bytes);
  ScratchpadMem mem(goldenL1);
  const RefResult ref = interpretKernel(g, trips, liveIns, mem);

  for (const auto& [reg, v] : ref.liveOutValues) {
    EXPECT_EQ(crf.peek(reg), v)
        << "live-out CDRF r" << reg << " mismatch (kernel " << g.name
        << ", II=" << out.sk.ii << ")";
  }
  for (u32 a = 0; a < compareBytes; a += 4) {
    EXPECT_EQ(l1.read32(a), goldenL1.read32(a))
        << "memory mismatch at 0x" << std::hex << a << " (kernel " << g.name
        << ")";
  }
  return out;
}

}  // namespace testutil
}  // namespace adres
