// CounterRegistry threading contract: getters are single-writer (owner
// thread asserted, cross-thread reads rejected with SimError), ownership is
// transferable with rebindOwner(), and publish()/published() is the
// supported cross-thread path — exercised here under concurrent mutation so
// TSan validates the absence of data races.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/check.hpp"
#include "trace/counters.hpp"

namespace adres {
namespace {

TEST(CounterRegistryThreading, CrossThreadGetterReadThrows) {
  trace::CounterRegistry reg;
  u64 x = 1;
  reg.add("c", [&] { return x; });
  EXPECT_EQ(reg.value("c"), 1u);  // binds this thread as the owner

  bool threw = false;
  std::thread other([&] {
    try {
      (void)reg.value("c");
    } catch (const SimError&) {
      threw = true;
    }
  });
  other.join();
  EXPECT_TRUE(threw) << "unsynchronized cross-thread reads must be rejected";
  EXPECT_EQ(reg.snapshot().at("c"), 1u) << "the owner keeps working";
}

TEST(CounterRegistryThreading, RebindOwnerTransfersOwnership) {
  trace::CounterRegistry reg;
  u64 x = 7;
  reg.add("c", [&] { return x; });
  EXPECT_EQ(reg.value("c"), 7u);  // owner: main thread

  u64 seen = 0;
  std::thread worker([&] {
    reg.rebindOwner();
    seen = reg.value("c");
  });
  worker.join();
  EXPECT_EQ(seen, 7u);

  // Ownership moved: the original thread is now a foreign reader.
  EXPECT_THROW((void)reg.value("c"), SimError);
  reg.rebindOwner();
  EXPECT_EQ(reg.value("c"), 7u) << "and can take it back explicitly";
}

TEST(CounterRegistryThreading, PublishedSnapshotsAreSafeUnderMutation) {
  trace::CounterRegistry reg;
  u64 live = 0;  // mutated by the owner only; readers see published copies
  reg.add("farm.packets", [&] { return live; });
  reg.addGroup("region", [&] {
    return std::vector<std::pair<std::string, u64>>{{"decode.cycles", live * 3}};
  });

  constexpr u64 kRounds = 2000;
  std::atomic<bool> done{false};
  std::atomic<u64> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      u64 last = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (const auto snap = reg.published()) {
          const u64 v = snap->counters.at("farm.packets");
          EXPECT_GE(v, last) << "published values are monotone here";
          EXPECT_EQ(snap->groups.at("region").at("decode.cycles"), v * 3)
              << "each snapshot is internally consistent";
          last = v;
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::shared_ptr<const trace::PublishedCounters> mine;
  for (live = 1; live <= kRounds; ++live) mine = reg.publish();
  // The owner can outrun thread startup; hold the final value and keep
  // publishing until at least one reader has observed a snapshot.
  live = kRounds;
  while (reads.load(std::memory_order_relaxed) == 0) mine = reg.publish();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine->counters.at("farm.packets"), kRounds)
      << "publish() returns the owner's own snapshot";
  EXPECT_EQ(reg.published()->counters.at("farm.packets"), kRounds);
  EXPECT_GT(reads.load(), 0u) << "readers actually observed snapshots";
}

}  // namespace
}  // namespace adres
