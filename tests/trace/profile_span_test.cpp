// Per-packet spans and the cycle-attribution profiler: trace-id hashing,
// span-tree construction and clamping, the Chrome export, and — on a real
// modem decode — the KernelLaunchProfile partition invariant
// (cycles == issue + idle + stall + overhead), the adres.profile.v1 JSON
// schema and the flamegraph folded-stacks output.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json_min.hpp"
#include "core/processor.hpp"
#include "dsp/channel.hpp"
#include "sdr/modem_program.hpp"
#include "trace/profile.hpp"
#include "trace/span.hpp"

namespace adres::trace {
namespace {

using json::JsonParser;
using json::JsonValue;

TEST(PlanClass, NamesAreStableKindDotLatency) {
  EXPECT_EQ(planClassName(0, 1), "compute.lat1");
  EXPECT_EQ(planClassName(0, 3), "compute.lat3");
  EXPECT_EQ(planClassName(1, 3), "load.lat3");
  EXPECT_EQ(planClassName(2, 1), "store.lat1");
}

TEST(TraceId, DeterministicNonZeroAndInputSensitive) {
  EXPECT_EQ(packetTraceId(7, 3), packetTraceId(7, 3));
  EXPECT_NE(packetTraceId(7, 3), packetTraceId(8, 3)) << "job id mixed in";
  EXPECT_NE(packetTraceId(7, 3), packetTraceId(7, 4)) << "tag mixed in";
  // Never 0, even for the all-zero input (0 is "no trace id").
  EXPECT_NE(packetTraceId(0, 0), 0u);
  for (u64 j = 0; j < 64; ++j) EXPECT_NE(packetTraceId(j, 0), 0u) << j;
}

TEST(TraceId, HexIs16LowercaseDigits) {
  EXPECT_EQ(traceIdHex(0), "0000000000000000");
  EXPECT_EQ(traceIdHex(0xabc), "0000000000000abc");
  EXPECT_EQ(traceIdHex(~0ull), "ffffffffffffffff");
  EXPECT_EQ(traceIdHex(0x0123456789abcdefull), "0123456789abcdef");
  const std::string h = traceIdHex(packetTraceId(42, 1));
  ASSERT_EQ(h.size(), 16u);
  for (const char c : h)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
}

TEST(PacketSpans, TreeHasPhasesAndRegionChildrenMappedLinearly) {
  // Two-region decode: 100 sim cycles over a 100 µs decode window, so one
  // cycle maps to exactly one host µs.
  std::vector<RegionSpan> log;
  log.push_back({0, 0, 40, 80});
  log.push_back({1, 40, 100, 120});
  const std::vector<std::string> names = {"sync", "payload"};
  const PacketSpans ps =
      buildPacketSpans(/*jobId=*/5, /*tag=*/2, /*worker=*/1, /*enqueueUs=*/0,
                       /*dispatchUs=*/10, /*decodeStartUs=*/12,
                       /*decodeEndUs=*/112, /*decodeCycles=*/100, log, names);

  EXPECT_EQ(ps.traceId, packetTraceId(5, 2));
  EXPECT_EQ(ps.jobId, 5u);
  EXPECT_EQ(ps.worker, 1);
  EXPECT_EQ(ps.tag, 2u);
  ASSERT_EQ(ps.spans.size(), 6u) << "4 phases + 2 region children";
  EXPECT_FALSE(ps.empty());

  const Span* packet = ps.find(SpanKind::kPacket);
  ASSERT_NE(packet, nullptr);
  EXPECT_DOUBLE_EQ(packet->startUs, 0.0);
  EXPECT_DOUBLE_EQ(packet->durUs, 112.0);
  EXPECT_EQ(packet->cycles, 100u);

  EXPECT_DOUBLE_EQ(ps.queueWaitUs(), 10.0);
  const Span* dispatch = ps.find(SpanKind::kDispatch);
  ASSERT_NE(dispatch, nullptr);
  EXPECT_DOUBLE_EQ(dispatch->startUs, 10.0);
  EXPECT_DOUBLE_EQ(dispatch->durUs, 2.0);
  EXPECT_DOUBLE_EQ(ps.decodeUs(), 100.0);

  // Region children: named from regionNames, cycle-exact, 1 µs per cycle.
  const Span& sync = ps.spans[4];
  EXPECT_EQ(sync.kind, SpanKind::kRegion);
  EXPECT_EQ(sync.name, "sync");
  EXPECT_EQ(sync.startCycle, 0u);
  EXPECT_EQ(sync.cycles, 40u);
  EXPECT_EQ(sync.ops, 80u);
  EXPECT_DOUBLE_EQ(sync.startUs, 12.0);
  EXPECT_DOUBLE_EQ(sync.durUs, 40.0);
  const Span& payload = ps.spans[5];
  EXPECT_EQ(payload.name, "payload");
  EXPECT_DOUBLE_EQ(payload.startUs, 52.0);
  EXPECT_DOUBLE_EQ(payload.durUs, 60.0);
  // An out-of-range region id falls back to a synthetic name.
  const PacketSpans fallback = buildPacketSpans(
      5, 2, 1, 0, 10, 12, 112, 100, {{9, 0, 10, 1}}, names);
  EXPECT_EQ(fallback.spans.back().name, "region9");
}

TEST(PacketSpans, TimestampsClampMonotone) {
  // A dispatch stamp earlier than the enqueue stamp (clock skew between the
  // submitter and the worker) must not yield negative durations.
  const PacketSpans ps = buildPacketSpans(1, 0, 0, /*enqueueUs=*/50,
                                          /*dispatchUs=*/40, /*decodeStart=*/30,
                                          /*decodeEnd=*/20, 0, {}, {});
  ASSERT_EQ(ps.spans.size(), 4u);
  for (const Span& s : ps.spans) {
    EXPECT_GE(s.startUs, 50.0) << s.name;
    EXPECT_GE(s.durUs, 0.0) << s.name;
  }
  EXPECT_DOUBLE_EQ(ps.queueWaitUs(), 0.0);
  EXPECT_DOUBLE_EQ(ps.decodeUs(), 0.0);
}

TEST(PacketSpans, ChromeTraceExportIsValidJsonWithTraceIds) {
  std::vector<PacketSpans> packets;
  packets.push_back(buildPacketSpans(1, 0, 0, 0, 1, 2, 10, 8,
                                     {{0, 0, 8, 4}}, {"sync"}));
  packets.push_back(buildPacketSpans(2, 0, 3, 1, 2, 3, 12, 9, {}, {}));
  std::ostringstream os;
  writeSpansChromeTrace(packets, os);
  const std::string text = os.str();

  const JsonValue root = JsonParser(text).parse();  // must not throw
  const auto& events = root.at("traceEvents").array;
  // 1 process + 2 worker metadata events, then 5 + 4 span events.
  ASSERT_EQ(events.size(), 12u);
  EXPECT_EQ(events[0].at("ph").str, "M");
  EXPECT_EQ(events[0].at("args").at("name").str, "adres packet farm");
  EXPECT_EQ(events[1].at("args").at("name").str, "worker 0");
  EXPECT_EQ(events[2].at("args").at("name").str, "worker 3");
  u64 xEvents = 0;
  for (const JsonValue& e : events) {
    if (e.at("ph").str != "X") continue;
    ++xEvents;
    EXPECT_EQ(e.at("pid").number, 2.0);
    EXPECT_EQ(e.at("args").at("trace_id").str.size(), 16u);
    EXPECT_GE(e.at("dur").number, 0.0);
  }
  EXPECT_EQ(xEvents, 9u);
  EXPECT_NE(text.find("\"cat\":\"queue_wait\""), std::string::npos);
  EXPECT_NE(text.find(traceIdHex(packets[1].traceId)), std::string::npos);
}

/// One clean QAM-64 decode with profiling + region logging enabled; shared
/// by the profiler-invariant tests below.
struct ProfiledDecode {
  Processor proc;
  std::vector<RegionSpan> regionLog;
  sdr::ProcessorRxResult res;
  sdr::ModemOnProcessor modem;

  ProfiledDecode() {
    dsp::ModemConfig cfg;
    cfg.mod = dsp::Modulation::kQam64;
    cfg.numSymbols = 4;
    Rng rng(5);
    const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
    dsp::ChannelConfig cc;
    cc.flat = true;
    cc.snrDb = 40;
    cc.cfoPpm = 6;
    dsp::MimoChannel ch(cc);
    modem = sdr::buildModemProgram(cfg);
    sdr::RxRunOptions opts;
    opts.profile = true;
    opts.regionLog = &regionLog;
    res = sdr::runModemOnProcessor(proc, modem, ch.run(pkt.waveform), opts);
  }
};

TEST(Profiler, KernelLaunchCyclesPartitionExactly) {
  ProfiledDecode d;
  ASSERT_TRUE(d.res.detected);
  const auto& profs = d.proc.kernelProfiles();
  ASSERT_FALSE(profs.empty()) << "profiling was enabled";
  for (const auto& [key, kp] : profs) {
    SCOPED_TRACE("region " + std::to_string(key.first) + " kernel " +
                 std::to_string(key.second));
    EXPECT_GT(kp.launches, 0u);
    EXPECT_GT(kp.cycles, 0u);
    // The partition invariant: every booked cycle is attributed exactly once.
    EXPECT_EQ(kp.cycles,
              kp.issueCycles + kp.idleCycles + kp.stallCycles +
                  kp.overheadCycles);
    EXPECT_GT(kp.issueCycles, 0u) << "a launch that issued nothing";
    // Scheduled dispatch slots (plan classes x trips) bound retired ops.
    u64 scheduled = 0;
    for (const auto& [cls, ops] : kp.opsByClass) scheduled += ops;
    EXPECT_GT(scheduled, 0u);
    EXPECT_GE(scheduled, kp.ops);
  }
  // The region log covers the decode with monotone, named spans.
  ASSERT_FALSE(d.regionLog.empty());
  u64 prevEnd = 0;
  for (const RegionSpan& r : d.regionLog) {
    EXPECT_LE(r.startCycle, r.endCycle);
    EXPECT_GE(r.startCycle, prevEnd) << "spans are ordered";
    prevEnd = r.endCycle;
    ASSERT_GE(r.region, 0);
    EXPECT_LT(static_cast<std::size_t>(r.region),
              d.modem.program.regionNames.size());
  }
}

TEST(Profiler, SummaryFoldsMergesRanksAndExports) {
  ProfiledDecode d;
  ProfileSummary sum;
  EXPECT_TRUE(sum.empty());
  sum.addProcessor(d.proc);
  EXPECT_FALSE(sum.empty());
  EXPECT_EQ(sum.runs, 1u);
  EXPECT_EQ(sum.totalCycles, d.proc.activity().totalCycles());
  // Kernel rows carry human names resolved from the program.
  ASSERT_FALSE(sum.kernels.empty());
  EXPECT_TRUE(sum.kernels.count({"SDM processing", "sdm_processing"}))
      << "Table 2 kernel present under its region/kernel names";
  ASSERT_FALSE(sum.regions.empty());
  EXPECT_GT(sum.regions.at("non-kernel code").vliwCycles, 0u);

  // merge() doubles every count.
  ProfileSummary twice = sum;
  twice.merge(sum);
  EXPECT_EQ(twice.runs, 2u);
  EXPECT_EQ(twice.totalCycles, 2 * sum.totalCycles);
  for (const auto& [key, kr] : sum.kernels) {
    EXPECT_EQ(twice.kernels.at(key).cycles, 2 * kr.cycles);
    EXPECT_EQ(twice.kernels.at(key).ops, 2 * kr.ops);
  }

  // topSinks: descending, share against totalCycles, includes VLIW residues.
  const std::vector<CycleSink> sinks = sum.topSinks(5);
  ASSERT_GE(sinks.size(), 3u);
  for (std::size_t i = 1; i < sinks.size(); ++i)
    EXPECT_GE(sinks[i - 1].cycles, sinks[i].cycles);
  for (const CycleSink& s : sinks) {
    EXPECT_GT(s.share, 0.0);
    EXPECT_NEAR(s.share,
                static_cast<double>(s.cycles) /
                    static_cast<double>(sum.totalCycles),
                1e-12);
  }

  // adres.profile.v1 JSON: parses, and the per-kernel partition survives.
  std::ostringstream js;
  sum.writeJson(js);
  const JsonValue root = JsonParser(js.str()).parse();
  EXPECT_EQ(root.at("schema").str, "adres.profile.v1");
  EXPECT_EQ(root.at("runs").number, 1.0);
  EXPECT_EQ(root.at("total_cycles").number,
            static_cast<double>(sum.totalCycles));
  ASSERT_FALSE(root.at("kernels").array.empty());
  for (const JsonValue& k : root.at("kernels").array) {
    EXPECT_EQ(k.at("cycles").number,
              k.at("issue_cycles").number + k.at("idle_cycles").number +
                  k.at("stall_cycles").number + k.at("overhead_cycles").number);
    EXPECT_FALSE(k.at("region").str.empty());
    EXPECT_FALSE(k.at("kernel").str.empty());
  }
  ASSERT_FALSE(root.at("regions").array.empty());

  // Folded stacks: `modem;region;kernel;component N`, frames free of the
  // separator characters, totals matching the summary's issue cycles.
  std::ostringstream folded;
  sum.writeFolded(folded);
  std::istringstream lines(folded.str());
  std::string line;
  u64 issueTotal = 0, lineCount = 0;
  while (std::getline(lines, line)) {
    ++lineCount;
    ASSERT_EQ(line.rfind("modem;", 0), 0u) << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.find(' '), space) << "single separator space: " << line;
    if (line.find(";issue ") != std::string::npos)
      issueTotal += std::stoull(line.substr(space + 1));
  }
  EXPECT_GT(lineCount, 0u);
  u64 expectIssue = 0;
  for (const auto& [key, kr] : sum.kernels) expectIssue += kr.issueCycles;
  EXPECT_EQ(issueTotal, expectIssue);
}

TEST(Profiler, DisabledRunBooksIdenticalCyclesAndNoProfiles) {
  // The profiler is observability, not simulation: a profiled decode and a
  // plain decode must be bit- and cycle-exact, and the plain one must leave
  // no kernel profiles behind.
  ProfiledDecode on;
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = 4;
  Rng rng(5);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  dsp::MimoChannel ch(cc);
  const sdr::ModemOnProcessor m = sdr::buildModemProgram(cfg);
  Processor proc;
  const sdr::ProcessorRxResult off =
      sdr::runModemOnProcessor(proc, m, ch.run(pkt.waveform));

  EXPECT_EQ(off.cycles, on.res.cycles);
  EXPECT_EQ(off.bits, on.res.bits);
  EXPECT_TRUE(proc.kernelProfiles().empty());
}

}  // namespace
}  // namespace adres::trace
