// Trace & telemetry layer: ring-buffer flight recorder, Chrome / JSONL
// exporters (validated with the shared tests/support/json_min.hpp parser),
// counter registry, and the processor integration (events emitted during a
// real program run, zero perturbation when the sink is detached).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/processor.hpp"
#include "sched/progbuilder.hpp"
#include "common/json_min.hpp"
#include "trace/counters.hpp"
#include "trace/export.hpp"
#include "trace/telemetry.hpp"

namespace adres {
namespace {

using json::JsonParser;
using json::JsonValue;

TraceEvent ev(u64 cycle, TraceEventKind kind, u8 track = 0, u32 a = 0,
              u32 b = 0, u64 dur = 0) {
  return {cycle, dur, kind, track, a, b};
}

// ---------------------------------------------------------------------------
// RingBufferSink

TEST(RingBufferSink, RetainsEverythingBelowCapacity) {
  RingBufferSink ring(8);
  for (u64 i = 0; i < 5; ++i)
    ring.event(ev(i, TraceEventKind::kVliwOp, static_cast<u8>(i)));
  EXPECT_EQ(ring.accepted(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto evs = ring.events();
  ASSERT_EQ(evs.size(), 5u);
  for (u64 i = 0; i < 5; ++i) EXPECT_EQ(evs[i].cycle, i);
}

TEST(RingBufferSink, OverwritesOldestAndCountsDrops) {
  RingBufferSink ring(4);
  for (u64 i = 0; i < 10; ++i) ring.event(ev(i, TraceEventKind::kVliwOp));
  EXPECT_EQ(ring.accepted(), 10u);
  EXPECT_EQ(ring.dropped(), 6u) << "capacity 4, 10 emitted";
  EXPECT_EQ(ring.size(), 4u);
  const auto evs = ring.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest-first: the survivors are the last four events, in order.
  for (u64 i = 0; i < 4; ++i) EXPECT_EQ(evs[i].cycle, 6 + i);
}

TEST(RingBufferSink, ClearResetsEverything) {
  RingBufferSink ring(2);
  for (u64 i = 0; i < 5; ++i) ring.event(ev(i, TraceEventKind::kHalt));
  ring.clear();
  EXPECT_EQ(ring.accepted(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.events().empty());
  ring.event(ev(42, TraceEventKind::kHalt));
  ASSERT_EQ(ring.events().size(), 1u);
  EXPECT_EQ(ring.events()[0].cycle, 42u);
}

// ---------------------------------------------------------------------------
// Chrome trace exporter

TEST(ChromeExport, EmitsValidJsonWithRequiredFields) {
  std::vector<TraceEvent> events = {
      ev(100, TraceEventKind::kKernel, 0, 0, 123, 40),          // span
      ev(100, TraceEventKind::kModeSwitch, 0, 0),               // instant
      ev(110, TraceEventKind::kVliwOp, 2, 0),                   // slot 2 track
      ev(120, TraceEventKind::kFuActive, 7, 0, 9, 40),          // FU 7 track
  };
  trace::TraceNames names;
  names.kernels.push_back("fft_stage");
  std::ostringstream os;
  trace::writeChromeTrace(events, os, names);

  JsonValue root = JsonParser(os.str()).parse();
  ASSERT_EQ(root.type, JsonValue::kObject);
  ASSERT_TRUE(root.hasKey("traceEvents"));
  const JsonValue& arr = root.at("traceEvents");
  ASSERT_EQ(arr.type, JsonValue::kArray);

  int metadata = 0, spans = 0, instants = 0;
  for (const JsonValue& e : arr.array) {
    ASSERT_EQ(e.type, JsonValue::kObject);
    // Every record carries the Chrome trace-event required fields.
    ASSERT_TRUE(e.hasKey("name"));
    ASSERT_TRUE(e.hasKey("ph"));
    ASSERT_TRUE(e.hasKey("pid"));
    ASSERT_TRUE(e.hasKey("tid"));
    const std::string ph = e.at("ph").str;
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_TRUE(e.hasKey("ts"));
    if (ph == "X") {
      ++spans;
      ASSERT_TRUE(e.hasKey("dur"));
      EXPECT_GT(e.at("dur").number, 0.0);
    } else {
      ASSERT_EQ(ph, "i");
      ++instants;
    }
  }
  EXPECT_GE(metadata, 1 + 3 + 16) << "core + VLIW slots + CGA FUs named";
  EXPECT_EQ(spans, 2) << "kernel + FU-activity spans";
  EXPECT_EQ(instants, 2) << "mode switch + VLIW op";
}

TEST(ChromeExport, TimestampsScaleByClockPeriodAndNamesResolve) {
  std::vector<TraceEvent> events = {
      ev(400, TraceEventKind::kKernel, 0, 0, 5, 800),
  };
  trace::TraceNames names;
  names.kernels.push_back("xcorr");
  std::ostringstream os;
  trace::writeChromeTrace(events, os, names);  // default: 400 MHz
  JsonValue root = JsonParser(os.str()).parse();
  const JsonValue* kernel = nullptr;
  for (const JsonValue& e : root.at("traceEvents").array)
    if (e.at("ph").str == "X") kernel = &e;
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->at("name").str, "xcorr");
  EXPECT_DOUBLE_EQ(kernel->at("ts").number, 1.0) << "400 cycles @ 400 MHz = 1 us";
  EXPECT_DOUBLE_EQ(kernel->at("dur").number, 2.0);
  EXPECT_EQ(kernel->at("args").at("cycle").number, 400.0);
}

TEST(ChromeExport, EscapesSpecialCharactersInNames) {
  std::vector<TraceEvent> events = {ev(0, TraceEventKind::kRegionExit, 0, 0, 0, 7)};
  trace::TraceNames names;
  names.regions.push_back("equalize \"coeff\" calc.\n");
  std::ostringstream os;
  trace::writeChromeTrace(events, os, names);
  JsonValue root = JsonParser(os.str()).parse();  // must not throw
  bool found = false;
  for (const JsonValue& e : root.at("traceEvents").array)
    if (e.at("ph").str == "X" &&
        e.at("name").str == "equalize \"coeff\" calc.\n")
      found = true;
  EXPECT_TRUE(found);
}

TEST(JsonlExport, OneValidObjectPerLine) {
  std::vector<TraceEvent> events = {
      ev(10, TraceEventKind::kICacheMiss, 0, 0x40, 0, 20),
      ev(31, TraceEventKind::kL1Conflict, 2, 0x880, 4),
      ev(50, TraceEventKind::kHalt),
  };
  std::ostringstream os;
  trace::writeJsonl(events, os);
  std::istringstream in(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue v = JsonParser(line).parse();
    ASSERT_EQ(v.type, JsonValue::kObject);
    ASSERT_TRUE(v.hasKey("cycle"));
    ASSERT_TRUE(v.hasKey("kind"));
    ASSERT_TRUE(v.hasKey("track"));
    ++lines;
  }
  EXPECT_EQ(lines, 3);
}

// ---------------------------------------------------------------------------
// CounterRegistry

TEST(CounterRegistry, RegisterQueryAndSnapshot) {
  trace::CounterRegistry reg;
  u64 x = 7;
  reg.add("foo.count", [&] { return x; });
  reg.add("bar.count", [] { return u64{3}; });
  EXPECT_TRUE(reg.has("foo.count"));
  EXPECT_FALSE(reg.has("nope"));
  EXPECT_EQ(reg.value("foo.count"), 7u);
  x = 9;
  EXPECT_EQ(reg.value("foo.count"), 9u) << "getters read live state";
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("bar.count"), 3u);
  EXPECT_EQ(snap.at("foo.count"), 9u);
}

TEST(CounterRegistry, KeysAreSortedAndStable) {
  trace::CounterRegistry reg;
  reg.add("z.metric", [] { return u64{0}; });
  reg.add("a.metric", [] { return u64{0}; });
  reg.add("m.metric", [] { return u64{0}; });
  const auto keys = reg.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a.metric");
  EXPECT_EQ(keys[1], "m.metric");
  EXPECT_EQ(keys[2], "z.metric");
  EXPECT_EQ(reg.keys(), keys) << "key set is stable across calls";
}

TEST(CounterRegistry, RejectsDuplicateAndEmptyNames) {
  trace::CounterRegistry reg;
  reg.add("dup", [] { return u64{0}; });
  EXPECT_THROW(reg.add("dup", [] { return u64{1}; }), SimError);
  EXPECT_THROW(reg.add("", [] { return u64{0}; }), SimError);
  EXPECT_THROW(reg.value("missing"), SimError);
}

TEST(CounterRegistry, ResetInvokesHooks) {
  trace::CounterRegistry reg;
  u64 counter = 41;
  reg.add("c", [&] { return counter; });
  reg.onReset([&] { counter = 0; });
  EXPECT_EQ(reg.value("c"), 41u);
  reg.reset();
  EXPECT_EQ(reg.value("c"), 0u);
}

TEST(CounterRegistry, JsonDumpHasStableSchema) {
  trace::CounterRegistry reg;
  reg.add("l1.reads", [] { return u64{12}; });
  reg.add("cga.cycles", [] { return u64{900}; });
  reg.addGroup("region", [] {
    return std::vector<std::pair<std::string, u64>>{{"fft.cycles", 100}};
  });
  std::ostringstream os;
  reg.writeJson(os);
  JsonValue root = JsonParser(os.str()).parse();
  EXPECT_EQ(root.at("schema").str, "adres.counters.v1");
  EXPECT_EQ(root.at("counters").at("l1.reads").number, 12.0);
  EXPECT_EQ(root.at("counters").at("cga.cycles").number, 900.0);
  EXPECT_EQ(root.at("groups").at("region").at("fft.cycles").number, 100.0);
}

// ---------------------------------------------------------------------------
// Processor integration

KernelConfig accumulatorKernel() {
  KernelConfig k;
  k.name = "acc";
  k.ii = 1;
  k.schedLength = 1;
  k.contexts.resize(1);
  FuOp& f = k.contexts[0].fu[5];
  f.op = Opcode::ADD;
  f.src1 = SrcSel::localRf(0);
  f.src2 = SrcSel::imm();
  f.imm = 1;
  f.dst.toLocalRf = true;
  f.dst.localAddr = 0;
  k.preloads.push_back({5, 0, 10});
  k.writebacks.push_back({11, 5, 0});
  return k;
}

Program tracedProgram() {
  ProgramBuilder b("traced");
  const int kid = b.addKernel(accumulatorKernel());
  b.marker("warmup");
  b.li(10, 0);
  b.li(12, 20);
  b.markerEnd();
  b.marker("kernel region");
  b.cga(kid, 12);
  b.markerEnd();
  b.halt();
  return b.build();
}

int countKind(const std::vector<TraceEvent>& evs, TraceEventKind k) {
  int n = 0;
  for (const TraceEvent& e : evs)
    if (e.kind == k) ++n;
  return n;
}

TEST(ProcessorTracing, EmitsModeKernelRegionAndFetchEvents) {
  Processor p;
  RingBufferSink ring(1 << 14);
  p.setTrace(&ring);
  p.load(tracedProgram());
  EXPECT_EQ(p.run(), StopReason::kHalt);
  EXPECT_EQ(p.regs().peek(11), 20u) << "tracing must not change semantics";

  const auto evs = ring.events();
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(countKind(evs, TraceEventKind::kModeSwitch), 2);
  EXPECT_EQ(countKind(evs, TraceEventKind::kKernel), 1);
  EXPECT_EQ(countKind(evs, TraceEventKind::kHalt), 1);
  EXPECT_GT(countKind(evs, TraceEventKind::kVliwOp), 0);
  EXPECT_GT(countKind(evs, TraceEventKind::kICacheMiss), 0) << "cold I$";
  EXPECT_GT(countKind(evs, TraceEventKind::kFuActive), 0);
  EXPECT_EQ(countKind(evs, TraceEventKind::kRegionEnter),
            countKind(evs, TraceEventKind::kRegionExit))
      << "every region enter has a matching exit span";
  EXPECT_GE(countKind(evs, TraceEventKind::kRegionEnter), 2);

  // The kernel span covers the launch and carries the op count.
  for (const TraceEvent& e : evs)
    if (e.kind == TraceEventKind::kKernel) {
      EXPECT_GT(e.dur, 20u) << "20 trips + mode-switch overhead";
      EXPECT_GT(e.b, 0u) << "ops executed inside the kernel";
    }
  // FU-activity spans land inside [0, final cycle] on FU tracks.
  for (const TraceEvent& e : evs)
    if (e.kind == TraceEventKind::kFuActive) {
      EXPECT_LT(e.track, kCgaFus);
      EXPECT_GT(e.dur, 0u);
    }
}

TEST(ProcessorTracing, DetachedSinkDoesNotPerturbTiming) {
  Processor traced;
  RingBufferSink ring;
  traced.setTrace(&ring);
  traced.load(tracedProgram());
  traced.run();

  Processor plain;
  plain.load(tracedProgram());
  plain.run();

  EXPECT_EQ(traced.cycles(), plain.cycles())
      << "tracing is observation only — identical cycle-accurate behaviour";
  EXPECT_EQ(traced.regs().peek(11), plain.regs().peek(11));
  EXPECT_GT(ring.accepted(), 0u);
}

TEST(ProcessorTracing, RegionNamesResolveInChromeExport) {
  Processor p;
  RingBufferSink ring;
  p.setTrace(&ring);
  p.load(tracedProgram());
  p.run();
  trace::TraceNames names;
  for (const KernelConfig& k : p.program().kernels)
    names.kernels.push_back(k.name);
  names.regions = p.program().regionNames;
  std::ostringstream os;
  trace::writeChromeTrace(ring.events(), os, names);
  JsonValue root = JsonParser(os.str()).parse();
  bool kernelRegion = false, accKernel = false;
  for (const JsonValue& e : root.at("traceEvents").array) {
    if (e.at("ph").str == "M") continue;
    if (e.at("name").str == "kernel region") kernelRegion = true;
    if (e.at("name").str == "acc") accKernel = true;
  }
  EXPECT_TRUE(kernelRegion) << "region marker name resolved";
  EXPECT_TRUE(accKernel) << "kernel name resolved";
}

TEST(ProcessorCounters, RegistryCoversEverySubsystemAndResets) {
  Processor p;
  p.load(tracedProgram());
  p.run();
  trace::CounterRegistry reg;
  trace::registerProcessorCounters(reg, p);

  // The acceptance contract: core/VLIW/CGA/stall/sleep cycles, I$, L1
  // banks, CDRF/PRF ports, DMA all present under stable names.
  for (const char* key :
       {"core.cycles", "vliw.cycles", "vliw.stall_cycles", "cga.cycles",
        "cga.stall_cycles", "sleep.cycles", "mode.switches",
        "icache.accesses", "icache.misses", "l1.reads", "l1.writes",
        "l1.bank_conflicts", "l1.bank_conflict_cycles", "cdrf.reads",
        "cdrf.writes", "cprf.reads", "cprf.writes", "lrf.reads",
        "lrf.writes", "dma.transfers", "dma.words"})
    EXPECT_TRUE(reg.has(key)) << key;

  EXPECT_GT(reg.value("core.cycles"), 0u);
  EXPECT_GT(reg.value("cga.cycles"), 0u);
  EXPECT_GT(reg.value("icache.accesses"), 0u);
  EXPECT_EQ(reg.value("mode.switches"), 2u);

  std::ostringstream os;
  reg.writeJson(os);
  JsonValue root = JsonParser(os.str()).parse();
  EXPECT_EQ(root.at("schema").str, "adres.counters.v1");
  EXPECT_TRUE(root.at("groups").hasKey("region"));

  const auto keysBefore = reg.keys();
  reg.reset();
  EXPECT_EQ(reg.value("core.cycles"), 0u);
  EXPECT_EQ(reg.value("icache.accesses"), 0u) << "reset reaches the I$";
  EXPECT_EQ(reg.keys(), keysBefore) << "schema survives reset";
}

}  // namespace
}  // namespace adres
