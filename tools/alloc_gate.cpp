// alloc_gate: allocation-regression gate for the packet hot path
// (DESIGN.md §15).  CI fails if the steady-state generate → submit →
// decode → collect → recycle loop performs ANY heap allocation.
//
// Counting operator new/new[] are replaced globally; after a warm-up that
// fills every pool and cache (payload buffers, decoded-bit buffers, outcome
// storage, counter-map keys, region-profile nodes, warm-reload plans), the
// gate snapshots the allocation counter, runs measured rounds of the full
// producer/consumer loop, and asserts a zero delta.
//
//   $ ./alloc_gate [--rounds N] [--batch N] [--workers N] [--verbose]
//
// Exit 0: no steady-state allocations.  Exit 1: the hot path regressed —
// the report prints the per-round allocation delta to chase.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

#include "bench/bench_args.hpp"
#include "dsp/frontend.hpp"
#include "platform/packet_farm.hpp"

namespace {

std::atomic<unsigned long long> g_allocs{0};
/// While positive, each counted allocation dumps a stack to stderr and
/// decrements — the chase-the-regression mode (--trace N).
std::atomic<int> g_trace{0};

void maybeTrace() {
  if (g_trace.load(std::memory_order_relaxed) <= 0) return;
  if (g_trace.fetch_sub(1, std::memory_order_relaxed) <= 0) return;
#if defined(__GLIBC__)
  void* frames[32];
  const int n = backtrace(frames, 32);
  std::fprintf(stderr, "--- steady-state allocation ---\n");
  backtrace_symbols_fd(frames, n, 2);  // fd variant: no malloc
#else
  std::fprintf(stderr, "--- steady-state allocation (no backtrace here) ---\n");
#endif
}

void* countedAlloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  maybeTrace();
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* countedAlignedAlloc(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  maybeTrace();
  const std::size_t a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

}  // namespace

// Counting replacements for every usual-deallocation form (C++17 set).
void* operator new(std::size_t n) { return countedAlloc(n); }
void* operator new[](std::size_t n) { return countedAlloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t al) {
  return countedAlignedAlloc(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return countedAlignedAlloc(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace adres;

namespace {

/// One full producer/consumer round: generate + submit `batch` trials with
/// the vectorized frontend, collect the ordered outcomes, recycle every
/// buffer back to the farm's pools.  Exactly the campaign inner loop.
void runRound(platform::PacketFarm& farm, const dsp::ModemConfig& modem,
              u64 firstTrial, u64 batch, std::vector<u8>& bits,
              dsp::TrialScratch& scratch,
              std::vector<platform::RxOutcome>& outs) {
  const dsp::FrontendConfig fe;  // vectorized default
  for (u64 t = firstTrial; t < firstTrial + batch; ++t) {
    Rng txRng(0x9e3779b97f4a7c15ull ^ (t * 2u));
    dsp::ChannelConfig cc;
    cc.taps = 2;
    cc.snrDb = 30;
    cc.cfoPpm = 5;
    cc.seed = 0xbf58476d1ce4e5b9ull ^ (t * 2u + 1u);
    platform::RxJob job;
    job.id = t;
    job.rx[0] = farm.acquireSampleBuffer();
    job.rx[1] = farm.acquireSampleBuffer();
    dsp::generateTrial(modem, cc, txRng, bits, job.rx, scratch, fe);
    farm.submit(std::move(job));
  }
  farm.collectInto(outs);
  farm.recycleOutcomes(outs);
}

}  // namespace

int main(int argc, char** argv) {
  int rounds = 16;
  int batch = 8;
  int workers = 2;
  int warmup = 8;
  int traceN = 0;
  bool verbose = false;

  bench::Args args("alloc_gate",
                   "asserts zero steady-state heap allocations on the "
                   "generate/submit/decode/collect hot path");
  args.flag("rounds", "N", "measured rounds", &rounds);
  args.flag("batch", "N", "trials per round", &batch);
  args.flag("workers", "N", "farm worker threads", &workers);
  args.flag("warmup", "N", "warm-up rounds before the gate arms", &warmup);
  args.flag("trace", "N", "stderr backtraces for the first N steady-state "
            "allocations (regression chasing)", &traceN);
  args.flag("verbose", "print per-round allocation counts", &verbose);
  if (!args.parse(argc, argv)) return args.parseError() ? 1 : 0;

  dsp::ModemConfig modem;
  modem.mod = dsp::Modulation::kQam64;
  modem.numSymbols = 2;

  platform::FarmConfig fc;
  fc.modem = modem;
  fc.numWorkers = workers;
  fc.queueCapacity = static_cast<std::size_t>(2 * batch);
  fc.ordered = true;
  fc.watchdog.enabled = false;  // supervision thread wakes allocate-free, but
                                // event emission must never fire mid-gate
  fc.statsPublishInterval = 0;  // publishing copies stat maps by design
  platform::PacketFarm farm(fc);

  std::vector<u8> bits;
  dsp::TrialScratch scratch;
  std::vector<platform::RxOutcome> outs;

  // Warm-up: fills the sample/bit pools, outcome storage, the session's
  // counter/region accumulators and the warm-reload plan cache.
  u64 trial = 0;
  for (int r = 0; r < warmup; ++r, trial += static_cast<u64>(batch))
    runRound(farm, modem, trial, static_cast<u64>(batch), bits, scratch, outs);

  const unsigned long long armed = g_allocs.load(std::memory_order_relaxed);
  g_trace.store(traceN, std::memory_order_relaxed);
  unsigned long long prev = armed;
  for (int r = 0; r < rounds; ++r, trial += static_cast<u64>(batch)) {
    runRound(farm, modem, trial, static_cast<u64>(batch), bits, scratch, outs);
    if (verbose) {
      const unsigned long long now = g_allocs.load(std::memory_order_relaxed);
      std::printf("round %2d: %llu allocations\n", r, now - prev);
      prev = now;
    }
  }
  const unsigned long long after = g_allocs.load(std::memory_order_relaxed);

  const unsigned long long delta = after - armed;
  std::printf("alloc_gate: %d rounds x %d trials on %d workers: "
              "%llu steady-state allocations (%llu during warm-up)\n",
              rounds, batch, workers, delta, armed);
  if (delta != 0) {
    std::printf("FAIL: the packet hot path allocated %llu times after "
                "warm-up (expected 0)\n", delta);
    return 1;
  }
  std::printf("PASS: zero steady-state heap allocations\n");
  return 0;
}
