// campaign_runner: Monte-Carlo BER/PER sweeps on the packet farm from the
// command line (src/campaign, DESIGN.md §11).
//
//   $ ./campaign_runner --mod qam16,qam64 --snr 10:4:30 --taps 1 --flat \
//         --workers 4 --checkpoint camp.json
//
// Axes take comma lists ("10,20,30") or lo:step:hi ranges ("10:4:30").
// With --checkpoint the adres.campaign.v1 file is rewritten atomically
// after every completed cell; re-running the same command resumes from it
// (--fresh ignores an existing file).  --stop-after-cells N exits after N
// cells complete — a deterministic "kill" for resume testing.  With
// --live-metrics a MetricsServer exposes campaign progress while it runs.
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_args.hpp"
#include "campaign/runner.hpp"
#include "obs/metrics_server.hpp"

using namespace adres;

namespace {

/// Parses "a,b,c" or "lo:step:hi" (inclusive hi, within 1e-9) into doubles.
std::vector<double> parseAxis(const std::string& s) {
  std::vector<double> out;
  const std::size_t c1 = s.find(':');
  if (c1 != std::string::npos) {
    const std::size_t c2 = s.find(':', c1 + 1);
    if (c2 != std::string::npos) {
      const double lo = std::atof(s.substr(0, c1).c_str());
      const double step = std::atof(s.substr(c1 + 1, c2 - c1 - 1).c_str());
      const double hi = std::atof(s.substr(c2 + 1).c_str());
      if (step > 0) {
        for (double v = lo; v <= hi + 1e-9; v += step) out.push_back(v);
        return out;
      }
    }
    return out;  // malformed range -> empty, caught by expand()
  }
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? std::string::npos
                                                 : comma - pos);
    if (!tok.empty()) out.push_back(std::atof(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<int> parseAxisInt(const std::string& s) {
  std::vector<int> out;
  for (double v : parseAxis(s)) out.push_back(static_cast<int>(v));
  return out;
}

bool parseMods(const std::string& s, std::vector<dsp::Modulation>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? std::string::npos
                                                 : comma - pos);
    if (tok == "qam16" || tok == "16") {
      out.push_back(dsp::Modulation::kQam16);
    } else if (tok == "qam64" || tok == "64") {
      out.push_back(dsp::Modulation::kQam64);
    } else if (!tok.empty()) {
      std::fprintf(stderr, "campaign_runner: unknown modulation '%s' "
                           "(mapped demod supports qam16, qam64)\n",
                   tok.c_str());
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string mods = "qam64";
  std::string snr = "30";
  std::string cfo = "10";
  std::string taps = "3";
  std::string symbols = "4";
  double delaySpread = 0.45;
  bool flat = false;
  int seed = 1;
  int minTrials = 16, maxTrials = 1024, errorBudget = 50;
  double ciHalfWidth = 0.05, confidence = 0.95;
  int batch = 16;
  int workers = 1;
  int producers = 1;
  std::string frontend = "vectorized";
  std::string checkpoint;
  bool fresh = false;
  int stopAfterCells = -1;
  int metricsPort = -1;
  int lingerMs = 0;
  bool quiet = false;

  bench::Args args("campaign_runner",
                   "Monte-Carlo BER/PER campaign on the packet farm");
  args.flag("mod", "LIST", "modulations: qam16,qam64", &mods);
  args.flag("snr", "AXIS", "SNR dB list or lo:step:hi", &snr);
  args.flag("cfo", "AXIS", "CFO ppm list or lo:step:hi", &cfo);
  args.flag("taps", "AXIS", "channel tap counts", &taps);
  args.flag("symbols", "AXIS", "OFDM data symbols per packet (even)", &symbols);
  args.flag("delay-spread", "X", "exponential tap-power decay", &delaySpread);
  args.flag("flat", "identity-gain channel (AWGN+CFO only)", &flat);
  args.flag("seed", "N", "campaign master seed", &seed);
  args.flag("min-trials", "N", "min trials per cell", &minTrials);
  args.flag("max-trials", "N", "max trials per cell", &maxTrials);
  args.flag("error-budget", "N", "stop a cell after N packet errors",
            &errorBudget);
  args.flag("ci-halfwidth", "X", "stop when the Wilson CI half-width <= X",
            &ciHalfWidth);
  args.flag("confidence", "X", "CI coverage (default 0.95)", &confidence);
  args.flag("batch", "N", "trials per farm batch (part of the spec)", &batch);
  args.flag("workers", "N", "farm worker threads", &workers);
  args.flag("producers", "N",
            "trial-generation threads (results identical for any N)",
            &producers);
  args.flag("frontend", "KIND",
            "trial frontend: scalar|vectorized (bit-identical)", &frontend);
  args.flag("checkpoint", "PATH", "adres.campaign.v1 checkpoint file",
            &checkpoint);
  args.flag("fresh", "ignore an existing checkpoint", &fresh);
  args.flag("stop-after-cells", "N", "exit after N cells complete this run",
            &stopAfterCells);
  args.flag("live-metrics", "PORT",
            "serve Prometheus /metrics + /metrics.json on PORT (0=ephemeral)",
            &metricsPort);
  args.flag("linger-ms", "N", "keep serving metrics N ms after the run",
            &lingerMs);
  args.flag("quiet", "suppress per-cell progress lines", &quiet);
  if (!args.parse(argc, argv)) return args.parseError() ? 1 : 0;

  campaign::CampaignConfig cfg;
  if (!parseMods(mods, cfg.sweep.mods)) return 1;
  cfg.sweep.snrDb = parseAxis(snr);
  cfg.sweep.cfoPpm = parseAxis(cfo);
  cfg.sweep.taps = parseAxisInt(taps);
  cfg.sweep.numSymbols = parseAxisInt(symbols);
  cfg.sweep.delaySpread = delaySpread;
  cfg.sweep.flat = flat;
  cfg.sweep.seed = static_cast<u64>(seed);
  cfg.sweep.batchSize = static_cast<u64>(batch);
  cfg.sweep.stop.minTrials = static_cast<u64>(minTrials);
  cfg.sweep.stop.maxTrials = static_cast<u64>(maxTrials);
  cfg.sweep.stop.errorBudget = static_cast<u64>(errorBudget);
  cfg.sweep.stop.ciHalfWidth = ciHalfWidth;
  cfg.sweep.stop.confidence = confidence;
  cfg.workers = workers;
  cfg.producers = producers;
  try {
    cfg.frontend.kind = dsp::parseFrontendKind(frontend);
  } catch (const SimError& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 1;
  }
  cfg.checkpointPath = checkpoint;
  cfg.resume = !fresh;
  cfg.stopAfterCells = stopAfterCells;
  if (!quiet)
    cfg.log = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
      std::fflush(stdout);
    };

  campaign::CampaignRunner runner(cfg);

  obs::MetricsRegistry registry;
  std::unique_ptr<obs::MetricsServer> server;
  if (metricsPort >= 0) {
    runner.registerMetrics(registry);
    server = std::make_unique<obs::MetricsServer>(registry, metricsPort);
    std::printf("# live metrics on http://localhost:%d/metrics\n",
                server->port());
  }

  const campaign::CampaignResult res = runner.run();

  std::printf("\n%-28s %8s %10s %21s %10s %9s %11s %9s\n", "cell", "trials",
              "PER", "PER 95% CI", "BER", "cyc/pkt", "nJ/bit", "Mbps");
  for (std::size_t i = 0; i < res.cells.size(); ++i) {
    const campaign::CellSpec& c = res.cells[i];
    const campaign::CellResult& r = res.results[i];
    if (!r.done) {
      std::printf("%-28s (not run)\n", campaign::cellLabel(c).c_str());
      continue;
    }
    const campaign::Interval ci =
        campaign::wilson(r.packetErrors, r.trials, cfg.sweep.stop.confidence);
    const double goodput = dsp::rawRateMbps(c.modem) * (1.0 - r.per());
    std::printf("%-28s %8llu %10.4g [%8.4g, %8.4g] %10.3g %9.0f %11.2f %9.2f\n",
                campaign::cellLabel(c).c_str(),
                static_cast<unsigned long long>(r.trials), r.per(), ci.lo,
                ci.hi, r.ber(), r.avgCyclesPerPacket(), r.energyPerBitNj(),
                goodput);
  }
  std::printf("\ntrials run: %llu  discarded past stop points: %llu%s\n",
              static_cast<unsigned long long>(res.trialsRun),
              static_cast<unsigned long long>(res.trialsDiscarded),
              res.completed ? "" : "  (campaign incomplete)");

  if (server && lingerMs > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(lingerMs));
  registry.clear();
  return 0;
}
