#!/usr/bin/env python3
"""Render the cell-capacity report from an adres.bench_cell.v1 dump.

Reads the JSON bench_cell emits (BENCH_cell.json) and prints a Markdown
users/cell-vs-servers table: one row per (servers, users) config with
offered load, deadline-miss breakdown, goodput and simulated latency
tails, followed by the headline sustained-users summary (the largest user
count per pool size whose miss rate stays within the run's target).  The
EXPERIMENTS.md table is generated with this tool.

Usage:
  tools/cell_report.py BENCH_cell.json [--summary-only]

Exit code 0 on success, 2 on bad input.
"""
import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("dump", help="adres.bench_cell.v1 JSON path")
    ap.add_argument("--summary-only", action="store_true",
                    help="print only the sustained-users table")
    opts = ap.parse_args()

    try:
        with open(opts.dump, "r", encoding="utf-8") as f:
            d = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cell_report: cannot read {opts.dump}: {e}", file=sys.stderr)
        return 2
    if d.get("schema") != "adres.bench_cell.v1":
        print(f"cell_report: not an adres.bench_cell.v1 dump: "
              f"{d.get('schema')!r}", file=sys.stderr)
        return 2

    print(f"Cell capacity — {d['rate_pps']:.0f} pkt/s/user, "
          f"deadline {d['deadline_us']:.0f} us, "
          f"{d['duration_ms']:.0f} ms simulated, "
          f"{d['exec_tier']} tier (service {d['service_us']:.1f} us "
          f"-> {d['server_capacity_pps']:.0f} pkt/s per 400 MHz server)")
    print()

    if not opts.summary_only:
        print("| servers | users | offered | delivered | errors | "
              "miss rate | late | expired | overrun | goodput (Mbps) | "
              "util | p50 (us) | p99 (us) |")
        print("|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|"
              "---:|---:|")
        for r in d.get("rows", []):
            print(f"| {r['servers']} | {r['users']} | {r['offered']} | "
                  f"{r['delivered']} | {r['errors']} | "
                  f"{100.0 * r['miss_rate']:.1f}% | {r['missed_late']} | "
                  f"{r['missed_expired']} | {r['missed_overrun']} | "
                  f"{r['goodput_mbps']:.2f} | "
                  f"{100.0 * r['utilization']:.0f}% | "
                  f"{r['lat_p50_us']:.0f} | {r['lat_p99_us']:.0f} |")
        print()

    target = d.get("target_miss", 0.0)
    print(f"Sustained users/cell at <= {100.0 * target:.1f}% deadline miss:")
    print()
    print("| servers | sustained users/cell |")
    print("|---:|---:|")
    for s in d.get("sustained", []):
        print(f"| {s['servers']} | {s['users']} |")
    det = d.get("deterministic")
    if det is not None:
        print()
        print(f"Determinism (1-vs-N host workers, byte-identical "
              f"summaries): {'PASS' if det else 'FAIL'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
