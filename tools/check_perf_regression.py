#!/usr/bin/env python3
"""CI perf-regression gate for the simulator's host speed.

Compares a fresh bench_simspeed run against the committed baseline
(BENCH_simspeed.json at the repo root) and fails when any case regressed by
more than the threshold.  Accepts both dump shapes:

  adres.bench_simspeed.v1     one run (kernels[] + modem + farm)
  adres.bench_simspeed.ab.v1  a baseline/after pair — the "after" section
                              (the current optimized state) is the baseline

Because the baseline was recorded on a different machine than the CI
runner, raw Mcycles/s are not comparable directly.  The gate therefore
normalizes by the median speed ratio across every case ("this runner is
0.7x the baseline machine") and flags cases whose ratio falls more than
--threshold below that median — a uniform slowdown passes, a lopsided one
(one kernel or the modem/farm path got slower relative to the rest) fails.
With --absolute the raw per-case ratios are gated instead (same-machine
A/B runs).

Usage:
  tools/check_perf_regression.py --baseline BENCH_simspeed.json \
      --current build-rel/BENCH_simspeed_ci.json [--threshold 0.25]

Exit code 0 = no regression, 1 = regression, 2 = bad input.
"""
import argparse
import json
import sys


def load_run(path):
    """Returns the v1 run dict from either dump shape."""
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if schema == "adres.bench_simspeed.ab.v1":
        doc = doc.get("after", {})
        schema = doc.get("schema", "")
    if schema != "adres.bench_simspeed.v1":
        raise ValueError(f"{path}: unsupported schema {schema!r}")
    return doc


def cases(run):
    """Flattens a run into {case name: speed} (higher is better)."""
    out = {}
    for k in run.get("kernels", []):
        out[f"kernel/{k['name']}"] = float(k["mcyclesPerSec"])
    if "modem" in run:
        out["modem"] = float(run["modem"]["mcyclesPerSec"])
    if "farm" in run:
        out["farm"] = float(run["farm"]["packetsPerSec"])
    return out


def median(values):
    s = sorted(values)
    n = len(s)
    return s[n // 2] if n % 2 else 0.5 * (s[n // 2 - 1] + s[n // 2])


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_simspeed.json (v1 or ab.v1)")
    ap.add_argument("--current", required=True,
                    help="fresh bench_simspeed dump (v1)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max tolerated fractional regression (default 0.25)")
    ap.add_argument("--absolute", action="store_true",
                    help="gate raw ratios instead of median-normalized ones")
    args = ap.parse_args()

    try:
        base = cases(load_run(args.baseline))
        cur = cases(load_run(args.current))
    except (OSError, ValueError, KeyError) as e:
        print(f"perf gate: bad input: {e}", file=sys.stderr)
        return 2

    shared = sorted(set(base) & set(cur))
    if not shared:
        print("perf gate: no comparable cases between the two dumps",
              file=sys.stderr)
        return 2
    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"perf gate: WARNING: cases missing from current run: "
              f"{', '.join(missing)}")

    ratios = {name: cur[name] / base[name] for name in shared
              if base[name] > 0}
    med = 1.0 if args.absolute else median(list(ratios.values()))
    mode = "absolute" if args.absolute else f"median-normalized (x{med:.3f})"
    print(f"perf gate: {len(ratios)} cases, threshold "
          f"{args.threshold:.0%}, mode {mode}")

    failed = []
    for name in shared:
        if base[name] <= 0:
            continue
        rel = ratios[name] / med
        status = "OK"
        if rel < 1.0 - args.threshold:
            status = "REGRESSED"
            failed.append(name)
        print(f"  {name:<22} base {base[name]:10.2f}  cur {cur[name]:10.2f}"
              f"  ratio {ratios[name]:6.3f}  vs-median {rel:6.3f}  {status}")

    if failed:
        print(f"perf gate: FAIL — {len(failed)} case(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("perf gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
