// postmortem_replay: standalone verdict on an adres.postmortem.v1 bundle.
//
//   postmortem_replay BUNDLE.json       re-decode the bundle's packet and
//                                       confirm (or refute) the recorded
//                                       failure; exit 0 when the story holds
//   postmortem_replay --make-demo PATH  write a self-contained divergence
//                                       bundle (planted fault-injection bit
//                                       flip) for smoke-testing the replay
//                                       loop without a running farm
//
// Exit codes: 0 = bundle consistent / demo written, 1 = replay inconsistent,
// 2 = usage, unreadable bundle, or replay setup error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "dsp/channel.hpp"
#include "obs/integrity.hpp"
#include "obs/postmortem.hpp"
#include "platform/replay.hpp"
#include "platform/rx_session.hpp"

namespace {

using namespace adres;

obs::DecodeSummary decodeSummary(Processor& proc,
                                 const sdr::ModemOnProcessor& modem,
                                 const std::array<std::vector<cint16>, 2>& rx,
                                 ExecTier tier, u64 faultSeed) {
  sdr::RxRunOptions opts;
  opts.exec.tier = tier;
  opts.exec.plans = modem.plansFor(tier);
  opts.faultInjectBitFlipSeed = faultSeed;
  const sdr::ProcessorRxResult res =
      sdr::runModemOnProcessor(proc, modem, rx, opts);
  obs::DecodeSummary s;
  s.detected = res.detected;
  s.ltfStart = res.ltfStart;
  s.stop = stopReasonName(res.stop);
  s.cycles = res.cycles;
  s.totalOps = proc.activity().totalOps();
  s.bits = res.bits;
  s.regions = proc.profiles();
  return s;
}

obs::ResultRecord toRecord(const obs::DecodeSummary& s) {
  obs::ResultRecord r;
  r.valid = true;
  r.detected = s.detected;
  r.ltfStart = s.ltfStart;
  r.stop = s.stop;
  r.cycles = s.cycles;
  r.totalOps = s.totalOps;
  r.bits = s.bits;
  r.regions = s.regions;
  return r;
}

/// Builds and writes a planted-fault divergence bundle: one decodable
/// QAM-64 packet, primary decoded with a seeded payload bit flip, shadow
/// decoded clean on the interpreted tier.
int makeDemo(const std::string& path) {
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = 2;
  Rng rng(1234);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  cc.seed = 7;
  dsp::MimoChannel ch(cc);
  const std::array<std::vector<cint16>, 2> rx = ch.run(pkt.waveform);

  const auto modem = platform::modemProgramFor(cfg);
  constexpr u64 kFaultSeed = 0xFA0171ull;
  Processor primaryProc, shadowProc;
  const obs::DecodeSummary primary = decodeSummary(
      primaryProc, *modem, rx, defaultExecTier(), kFaultSeed);
  const obs::DecodeSummary shadow = decodeSummary(
      shadowProc, *modem, rx, ExecTier::kInterpreted, 0);

  const std::optional<obs::IntegrityEvent> ev =
      obs::compareDecodes(primary, shadow);
  if (!ev) {
    std::fprintf(stderr,
                 "demo fault did not produce a divergence (unexpected)\n");
    return 2;
  }

  obs::PostmortemBundle b;
  b.trigger = "divergence";
  b.reason = ev->detail;
  b.jobId = 0;
  b.traceId = trace::packetTraceId(0, 0);
  b.modulation = static_cast<int>(cfg.mod);
  b.numSymbols = cfg.numSymbols;
  b.execTier = execTierName(defaultExecTier());
  b.shadowTier = execTierName(ExecTier::kInterpreted);
  b.maxCycles = sdr::RxRunOptions{}.maxCycles;
  b.faultInjectSeed = kFaultSeed;
  b.rx = rx;
  b.primary = toRecord(primary);
  b.shadow = toRecord(shadow);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 2;
  }
  obs::writePostmortemJson(b, os);
  std::printf("demo divergence bundle written to %s (%s)\n", path.c_str(),
              ev->detail.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--make-demo") == 0)
    try {
      return makeDemo(argv[2]);
    } catch (const adres::SimError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: postmortem_replay BUNDLE.json\n"
                 "       postmortem_replay --make-demo PATH\n");
    return 2;
  }
  try {
    const adres::obs::PostmortemBundle b =
        adres::obs::loadPostmortemBundle(argv[1]);
    std::printf("bundle: trigger=%s job=%llu worker=%d tier=%s%s%s\n",
                b.trigger.c_str(), static_cast<unsigned long long>(b.jobId),
                b.worker, b.execTier.c_str(),
                b.shadow.valid ? " shadow=" : "",
                b.shadow.valid ? b.shadowTier.c_str() : "");
    std::printf("reason: %s\n", b.reason.c_str());
    const adres::platform::ReplayReport rep =
        adres::platform::replayPostmortem(b);
    std::printf("%s\n", rep.verdict.c_str());
    return rep.consistent ? 0 : 1;
  } catch (const adres::SimError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
