#!/usr/bin/env python3
"""Render a ranked cycle-sink report from an adres.profile.v1 dump.

Reads the JSON the cycle-attribution profiler writes (bench_simspeed
--profile-json, or any ProfileSummary::writeJson) and prints the top
steady-state cycle sinks with each kernel's booked cycles attributed to
issue / idle / stall / overhead, plus the per-(dispatch kind, latency)
op-class mix.  Markdown output (--md) is what PROFILE.md is generated from.

Usage:
  tools/profile_report.py adres_profile.json [--top N] [--md]

Exit code 0 = ok, 2 = bad input.
"""
import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"profile_report: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path: str) -> dict:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")
    if doc.get("schema") != "adres.profile.v1":
        fail(f"{path}: expected schema adres.profile.v1, got {doc.get('schema')!r}")
    return doc


def sinks(doc: dict) -> list:
    """(name, cycles, kernel-row-or-None), descending by cycles — the same
    ranking ProfileSummary::topSinks uses."""
    out = []
    for k in doc.get("kernels", []):
        out.append((f"{k['region']}/{k['kernel']}", k["cycles"], k))
    for r in doc.get("regions", []):
        if r.get("vliw_cycles", 0) > 0:
            out.append((f"{r['name']} [vliw]", r["vliw_cycles"], None))
    out.sort(key=lambda t: -t[1])
    return out


def pct(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole else "0.0%"


def class_mix(row: dict) -> str:
    classes = sorted(row.get("ops_by_class", {}).items(), key=lambda kv: -kv[1])
    total = sum(v for _, v in classes) or 1
    return ", ".join(f"{name} {100.0 * v / total:.0f}%" for name, v in classes)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("profile", help="adres.profile.v1 JSON path")
    ap.add_argument("--top", type=int, default=10, help="sinks to show")
    ap.add_argument("--md", action="store_true", help="markdown table output")
    args = ap.parse_args()

    doc = load(args.profile)
    total = doc.get("total_cycles", 0)
    ranked = sinks(doc)[: args.top]

    if args.md:
        print(f"Top cycle sinks over {doc.get('runs', 0)} runs "
              f"({total} total core cycles):")
        print()
        print("| # | sink | cycles | share | issue | idle | stall | overhead |")
        print("|--:|------|-------:|------:|------:|-----:|------:|---------:|")
        for i, (name, cycles, row) in enumerate(ranked, 1):
            if row:
                parts = [pct(row[k], cycles) for k in
                         ("issue_cycles", "idle_cycles", "stall_cycles",
                          "overhead_cycles")]
            else:
                parts = ["-", "-", "-", "-"]
            print(f"| {i} | `{name}` | {cycles} | {pct(cycles, total)} | "
                  + " | ".join(parts) + " |")
        print()
        for name, _, row in ranked:
            if row and row.get("ops_by_class"):
                print(f"- `{name}`: {class_mix(row)}")
    else:
        print(f"adres.profile.v1: {doc.get('runs', 0)} runs, "
              f"{total} total core cycles")
        for i, (name, cycles, row) in enumerate(ranked, 1):
            line = f"{i:2d}. {name:36s} {cycles:>12d} cycles  {pct(cycles, total):>6s}"
            if row:
                line += (f"  (issue {pct(row['issue_cycles'], cycles)}, "
                         f"idle {pct(row['idle_cycles'], cycles)}, "
                         f"stall {pct(row['stall_cycles'], cycles)}, "
                         f"overhead {pct(row['overhead_cycles'], cycles)})")
            print(line)
            if row and row.get("ops_by_class"):
                print(f"      ops: {class_mix(row)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
